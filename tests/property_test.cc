/**
 * @file
 * Property-based tests: system-wide invariants checked over random
 * operation sequences and parameterized across every tiering policy.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/units.hh"
#include "harness/invariants.hh"
#include "mem/cache.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"
#include "workloads/zipf.hh"

namespace mclock {
namespace {

/**
 * Drive a random zipfian workload with phase shifts under a policy and
 * then check global invariants.
 */
class PolicyInvariantTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    runRandomWorkload(sim::Simulator &sim, std::uint64_t accesses,
                      std::uint64_t seed)
    {
        Rng rng(seed);
        auto &space = sim.space();
        const std::size_t totalFrames =
            sim.memory().tierFrames(TierKind::Dram) +
            sim.memory().tierFrames(TierKind::Pmem);
        // Footprint ~60% of total memory so demotion paths engage
        // without exhausting swap-free configurations.
        const std::size_t pages = totalFrames * 6 / 10;
        const Vaddr base = sim.mmap(pages * kPageSize);
        workloads::ZipfianGenerator zipf(pages, 0.9);
        std::uint64_t phaseOffset = 0;
        for (std::uint64_t i = 0; i < accesses; ++i) {
            if (i % (accesses / 4 + 1) == 0) {
                // Phase change: rotate which pages are hot.
                phaseOffset = rng.nextRange(pages);
            }
            const std::uint64_t idx =
                (zipf.next(rng) + phaseOffset) % pages;
            const Vaddr va = base + idx * kPageSize +
                             (rng.next64() & (kPageSize - 64));
            if (rng.nextBool(0.3))
                sim.write(va, 8);
            else
                sim.read(va, 8);
            if (i % 64 == 0)
                sim.compute(100_us);
        }
        (void)space;
    }

    /** Frame accounting must balance on every node. */
    void
    checkFrameConservation(sim::Simulator &sim)
    {
        std::vector<std::size_t> residentPerNode(
            sim.memory().numNodes(), 0);
        sim.space().forEachPage([&](Page *pg) {
            if (pg->resident())
                ++residentPerNode[static_cast<std::size_t>(pg->node())];
        });
        sim.memory().forEachNode([&](sim::Node &node) {
            EXPECT_EQ(node.usedFrames(),
                      residentPerNode[static_cast<std::size_t>(
                          node.id())])
                << "node " << node.id();
        });
    }

    /** Every resident page sits on exactly one list of its own node. */
    void
    checkListMembership(sim::Simulator &sim)
    {
        std::size_t onLists = 0;
        sim.memory().forEachNode([&](sim::Node &node) {
            onLists += node.lists().totalPages();
        });
        std::size_t resident = 0;
        sim.space().forEachPage([&](Page *pg) {
            if (pg->resident()) {
                ++resident;
                EXPECT_TRUE(pg->onLru()) << "resident page off-LRU";
            } else {
                EXPECT_FALSE(pg->onLru());
            }
        });
        EXPECT_EQ(onLists, resident);
    }

    /**
     * The shared invariant suite the experiment harness runs after
     * every scenario unit (frame conservation, single residency,
     * occupancy <= capacity, list discipline, promote-flag evidence).
     * Running it here too keeps the two checkers from drifting apart.
     */
    void
    checkSharedInvariants(sim::Simulator &sim)
    {
        const auto violations = harness::collectViolations(sim);
        for (const auto &v : violations)
            ADD_FAILURE() << "harness invariant: " << v;
    }

    /** List tags must match the node's list that holds the page. */
    void
    checkListTagsConsistent(sim::Simulator &sim)
    {
        sim.memory().forEachNode([&](sim::Node &node) {
            for (int k = 1; k < kNumLruLists; ++k) {
                const auto kind = static_cast<LruListKind>(k);
                auto &list = node.lists().list(kind);
                for (Page *pg : list) {
                    EXPECT_EQ(pg->list(), kind);
                    EXPECT_EQ(pg->node(), node.id());
                    // Anonymity must match the list family.
                    if (kind != LruListKind::Unevictable) {
                        const bool anonList =
                            kind == LruListKind::InactiveAnon ||
                            kind == LruListKind::ActiveAnon ||
                            kind == LruListKind::PromoteAnon;
                        EXPECT_EQ(pg->isAnon(), anonList);
                    }
                }
            }
        });
    }
};

TEST_P(PolicyInvariantTest, InvariantsHoldAfterRandomWorkload)
{
    sim::MachineConfig cfg = sim::tinyTestMachine();
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy(GetParam(), 1_MiB));
    runRandomWorkload(sim, 30000, 42);
    checkFrameConservation(sim);
    checkListMembership(sim);
    checkListTagsConsistent(sim);
    checkSharedInvariants(sim);
}

TEST_P(PolicyInvariantTest, TimeIsMonotonic)
{
    sim::Simulator sim(sim::tinyTestMachine());
    sim.setPolicy(policies::makePolicy(GetParam(), 1_MiB));
    const Vaddr a = sim.mmap(64 * kPageSize);
    Rng rng(7);
    SimTime last = sim.now();
    for (int i = 0; i < 5000; ++i) {
        sim.read(a + rng.nextRange(64) * kPageSize, 8);
        EXPECT_GE(sim.now(), last);
        last = sim.now();
    }
}

TEST_P(PolicyInvariantTest, DeterministicForSameSeed)
{
    auto runOnce = [&](std::uint64_t seed) {
        sim::MachineConfig cfg = sim::tinyTestMachine();
        cfg.seed = seed;
        sim::Simulator sim(cfg);
        sim.setPolicy(policies::makePolicy(GetParam(), 1_MiB));
        runRandomWorkload(sim, 8000, seed);
        return sim.now();
    };
    EXPECT_EQ(runOnce(9), runOnce(9));
}

TEST_P(PolicyInvariantTest, UnmapReturnsAllFrames)
{
    sim::Simulator sim(sim::tinyTestMachine());
    sim.setPolicy(policies::makePolicy(GetParam(), 1_MiB));
    std::vector<std::size_t> freeBefore;
    sim.memory().forEachNode([&](sim::Node &n) {
        freeBefore.push_back(n.freeFrames());
    });
    runRandomWorkload(sim, 15000, 3);
    // Tear everything down; frames must return exactly.
    std::vector<Vaddr> regions;
    for (const auto &r : sim.space().regions())
        regions.push_back(r.start);
    for (Vaddr start : regions)
        sim.unmapRegion(start);
    std::size_t i = 0;
    sim.memory().forEachNode([&](sim::Node &n) {
        EXPECT_EQ(n.freeFrames(), freeBefore[i++]) << "node";
    });
    EXPECT_EQ(sim.space().pageCount(), 0u);
}


TEST_P(PolicyInvariantTest, SurvivesOvercommitWithSwap)
{
    // Footprint larger than DRAM+PM combined: every policy must reach
    // block storage through its pressure path without OOM-ing, and the
    // books must still balance afterwards.
    sim::MachineConfig cfg = sim::tinyTestMachine();
    cfg.swapPages = 0;  // unlimited swap
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy(GetParam(), 1_MiB));
    const std::size_t total =
        sim.memory().tierFrames(TierKind::Dram) +
        sim.memory().tierFrames(TierKind::Pmem);
    const std::size_t pages = total + total / 4;
    const Vaddr base = sim.mmap(pages * kPageSize);
    Rng rng(21);
    // Sequential first touch, then a scattered re-touch wave.
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(base + i * kPageSize);
    for (int i = 0; i < 5000; ++i)
        sim.read(base + rng.nextRange(pages) * kPageSize, 8);
    EXPECT_GT(sim.stats().get("swap_outs"), 0u);
    checkFrameConservation(sim);
    checkListMembership(sim);
    checkSharedInvariants(sim);
}

INSTANTIATE_TEST_SUITE_P(
    AllTieredPolicies, PolicyInvariantTest,
    ::testing::Values("static", "multiclock", "nimble", "at-cpm",
                      "at-opm", "autonuma", "amp-lru", "amp-lfu",
                      "amp-random"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// --- N-tier topology properties ----------------------------------------------------

sim::MachineConfig
threeTierTinyMachine()
{
    sim::MachineConfig cfg = sim::paperMachineThreeTier();
    cfg.nodes = {{0, 1_MiB}, {1, 2_MiB}, {2, 4_MiB}};
    cfg.cache.enabled = false;
    return cfg;
}

std::size_t
residentOnTier(sim::Simulator &sim, TierRank rank)
{
    std::size_t n = 0;
    sim.space().forEachPage([&](Page *pg) {
        if (pg->resident() && sim.pageTier(pg) == rank)
            ++n;
    });
    return n;
}

TEST(TierTopologyProperty, AllocationFallbackWalksRanksInOrder)
{
    // First-touch allocation fills rank 0 first, spills to rank 1 only
    // once DRAM runs out of headroom, and reaches rank 2 only after the
    // middle tier does too.
    sim::Simulator sim(threeTierTinyMachine());
    sim.setPolicy(policies::makePolicy("static"));
    const std::size_t f0 = sim.memory().tierFrames(0);
    const std::size_t f1 = sim.memory().tierFrames(1);
    const std::size_t f2 = sim.memory().tierFrames(2);
    const std::size_t total = f0 + f1 + f2;
    const Vaddr base = sim.mmap(total * kPageSize);
    std::size_t touched = 0;
    auto touchUpTo = [&](std::size_t target) {
        for (; touched < target; ++touched)
            sim.write(base + touched * kPageSize);
    };

    // Half of DRAM: everything stays on rank 0.
    touchUpTo(f0 / 2);
    EXPECT_EQ(residentOnTier(sim, 0), f0 / 2);
    EXPECT_EQ(residentOnTier(sim, 1), 0u);
    EXPECT_EQ(residentOnTier(sim, 2), 0u);

    // Past DRAM into half of CXL: rank 1 engages, rank 2 untouched.
    touchUpTo(f0 + f1 / 2);
    EXPECT_GT(residentOnTier(sim, 1), 0u);
    EXPECT_EQ(residentOnTier(sim, 2), 0u);

    // Past DRAM+CXL: the bottom tier finally takes the overflow.
    touchUpTo(f0 + f1 + f2 / 2);
    EXPECT_GT(residentOnTier(sim, 2), 0u);
    for (const auto &v : harness::collectViolations(sim))
        ADD_FAILURE() << "harness invariant: " << v;
    for (const auto &v : harness::collectCounterViolations(sim))
        ADD_FAILURE() << "counter invariant: " << v;
}

/** Overcommit beyond all tiers: the cascade must end in swap. */
class DemotionCascadeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DemotionCascadeTest, CascadeTerminatesInSwap)
{
    sim::MachineConfig cfg;
    switch (GetParam()) {
      case 1:
        cfg.nodes = {{0, 2_MiB}};
        break;
      case 2:
        cfg.nodes = {{0, 1_MiB}, {1, 4_MiB}};
        break;
      case 3:
        cfg = sim::paperMachineThreeTier();
        cfg.nodes = {{0, 1_MiB}, {1, 2_MiB}, {2, 4_MiB}};
        break;
    }
    cfg.cache.enabled = false;
    cfg.swapPages = 0;  // unlimited swap
    sim::Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy("multiclock"));
    std::size_t total = 0;
    for (TierRank rank : sim.memory().tierOrder())
        total += sim.memory().tierFrames(rank);
    const std::size_t pages = total + total / 4;
    const Vaddr base = sim.mmap(pages * kPageSize);
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(base + i * kPageSize);
    Rng rng(5);
    for (int i = 0; i < 4000; ++i)
        sim.read(base + rng.nextRange(pages) * kPageSize, 8);
    // The books balance, pressure reached block storage, and on
    // multi-tier machines pages flowed down the rank chain.
    EXPECT_GT(sim.stats().get("swap_outs"), 0u);
    if (sim.memory().numTiers() > 1) {
        EXPECT_GT(sim.metrics().totalDemotions(), 0u);
    }
    for (const auto &v : harness::collectViolations(sim))
        ADD_FAILURE() << "harness invariant: " << v;
    for (const auto &v : harness::collectCounterViolations(sim))
        ADD_FAILURE() << "counter invariant: " << v;
}

INSTANTIATE_TEST_SUITE_P(TierCounts, DemotionCascadeTest,
                         ::testing::Values(1, 2, 3),
                         [](const ::testing::TestParamInfo<int> &info) {
                             return std::to_string(info.param) + "tier";
                         });

// --- Zipfian distribution properties (parameterized over theta) -------------------

class ZipfPropertyTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfPropertyTest, RankFrequenciesDecrease)
{
    Rng rng(11);
    workloads::ZipfianGenerator zipf(256, GetParam());
    std::vector<int> counts(256, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[zipf.next(rng)];
    // Compare rank buckets: head must dominate mid must dominate tail.
    int head = 0, mid = 0, tail = 0;
    for (int r = 0; r < 16; ++r)
        head += counts[r];
    for (int r = 64; r < 80; ++r)
        mid += counts[r];
    for (int r = 240; r < 256; ++r)
        tail += counts[r];
    EXPECT_GT(head, mid);
    EXPECT_GE(mid, tail);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfPropertyTest,
                         ::testing::Values(0.5, 0.8, 0.99));

// --- LLC invariants over random access streams -------------------------------------

class CacheInvariantTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheInvariantTest, HitsPlusMissesEqualAccesses)
{
    CacheConfig cfg;
    cfg.sizeBytes = 16_KiB;
    cfg.ways = GetParam();
    CacheModel cache(cfg);
    Rng rng(GetParam());
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        cache.access(rng.nextRange(1 << 20), rng.nextBool(0.5));
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(n));
    EXPECT_LE(cache.writebacks(), cache.misses());
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheInvariantTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace mclock
