// R4 fixture: every violation code has an injection test.
void
injectListMismatch()
{
    expectViolation(ViolationCode::ListMismatch);
}
