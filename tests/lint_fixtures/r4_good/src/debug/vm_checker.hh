// R4 fixture: minimal violation taxonomy.
enum class ViolationCode : int {
    ListMismatch,
    NumCodes,
};
