// R4 fixture: minimal vmstat taxonomy.
enum class VmItem : int {
    PgscanActive,
    PgpromoteSuccess,
    NumItems,
};
