// R4 fixture: name table matching vmstat.hh exactly.
const char *
vmItemName(VmItem item)
{
    switch (item) {
      case VmItem::PgscanActive:     return "pgscan_active";
      case VmItem::PgpromoteSuccess: return "pgpromote_success";
    }
    return "unknown";
}
