// R4 fixture: tracepoint name table.
const char *
traceEventName(TraceEventType type)
{
    switch (type) {
      case TraceEventType::MigrationStart: return "migration_start";
    }
    return "unknown";
}
