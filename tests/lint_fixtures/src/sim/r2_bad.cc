// R2 fixture (bad): wall-clock and entropy reads in simulation code
// with no allowlist annotation. mclock_lint must fail citing
// [R2-wall-clock] for each of the four calls.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long long
nondeterministicSoup()
{
    const auto now = std::chrono::steady_clock::now();
    std::random_device entropy;
    const auto salt = static_cast<unsigned long long>(rand());
    const auto stamp =
        static_cast<unsigned long long>(time(nullptr));
    return now.time_since_epoch().count() + entropy() + salt + stamp;
}
