// R2 fixture (good): the only wall-clock reads are observation-only
// and carry a written reason. mclock_lint must exit 0.
#include <chrono>

double
observeOnly()
{
    // mclock-lint: wall-clock-ok(observation-only wall_seconds metric)
    const auto start = std::chrono::steady_clock::now();
    // mclock-lint: wall-clock-ok(observation-only wall_seconds metric)
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}
