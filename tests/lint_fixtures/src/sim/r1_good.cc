// R1 fixture (good): every unordered-container use is either
// lookup-only (annotated at the declaration) or an iteration whose
// order-independence is annotated at the site. mclock_lint must exit 0.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::uint64_t
lookupOnly(const std::unordered_map<std::uint32_t, std::uint64_t> &m)
{
    // mclock-lint: unordered-iter-ok(never iterated: point lookups only)
    std::unordered_map<std::uint32_t, std::uint64_t> index = m;
    auto it = index.find(7);
    return it == index.end() ? 0 : it->second;
}

std::uint64_t
orderFreeReduce(const std::unordered_set<std::uint64_t> &pages)
{
    std::uint64_t sum = 0;
    // mclock-lint: unordered-iter-ok(commutative integer sum)
    for (const auto page : pages)
        sum += page;
    return sum;
}
