// R1 fixture (bad): hash-order iteration in a deterministic path.
// mclock_lint must fail citing [R1-unordered-iter] twice: once for the
// unannotated loop, once for the reason-less allowlist annotation.
#include <cstdint>
#include <unordered_map>

std::uint64_t
firstKeyByHashOrder(
    const std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    std::unordered_map<std::uint64_t, std::uint64_t> copy = m;
    for (const auto &[key, value] : copy)  // order depends on the hash
        return key + value;
    return 0;
}

std::uint64_t
reasonlessAnnotation(
    const std::unordered_map<std::uint64_t, std::uint64_t> &m)
{
    std::unordered_map<std::uint64_t, std::uint64_t> copy = m;
    std::uint64_t sum = 0;
    // mclock-lint: unordered-iter-ok()
    for (const auto &[key, value] : copy)
        sum += key ^ value;
    return sum;
}
