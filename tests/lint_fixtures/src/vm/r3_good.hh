// R3 fixture (good): the migration result type and every charge-gate
// predicate are [[nodiscard]]. mclock_lint must exit 0.
#ifndef MCLOCK_TESTS_LINT_FIXTURES_R3_GOOD_HH_
#define MCLOCK_TESTS_LINT_FIXTURES_R3_GOOD_HH_

struct [[nodiscard]] MigrateResult
{
    bool ok = false;
};

class Gates
{
  public:
    [[nodiscard]] bool withinMax(int tier) const;
    [[nodiscard]] bool lowProtected(int tier) const;

    [[nodiscard]] bool
    consumePromoteCredit()
    {
        return credits_ > 0 ? (--credits_, true) : false;
    }

    [[nodiscard]] bool
    hasPromoteCredit() const
    {
        return credits_ > 0;
    }

  private:
    unsigned credits_ = 0;
};

#endif  // MCLOCK_TESTS_LINT_FIXTURES_R3_GOOD_HH_
