// R3 fixture (bad): result-carrying gate APIs without [[nodiscard]].
// mclock_lint must fail citing [R3-nodiscard] for the struct, the
// one-line declaration, and the gem5-style two-line declaration.
#ifndef MCLOCK_TESTS_LINT_FIXTURES_R3_BAD_HH_
#define MCLOCK_TESTS_LINT_FIXTURES_R3_BAD_HH_

struct MigrateResult
{
    bool ok = false;
};

class Gates
{
  public:
    bool withinMax(int tier) const;

    bool
    consumePromoteCredit()
    {
        return credits_ > 0 ? (--credits_, true) : false;
    }

  private:
    unsigned credits_ = 0;
};

#endif  // MCLOCK_TESTS_LINT_FIXTURES_R3_BAD_HH_
