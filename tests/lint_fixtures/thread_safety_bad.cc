// Thread-safety fixture (bad): writes a mutex-guarded member with the
// lock not held and a role-guarded member without asserting the role.
// MUST fail to compile under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// — the ctest registering this file is WILL_FAIL, so a toolchain that
// stops diagnosing these races turns the suite red.
#include "base/sync.hh"

namespace {

class Counter
{
  public:
    void
    incrementUnlocked()
    {
        ++value_;  // guarded by mu_, which is not held
    }

  private:
    mclock::base::Mutex mu_;
    int value_ MCLOCK_GUARDED_BY(mu_) = 0;
};

class Confined
{
  public:
    void
    bumpWithoutRole()
    {
        ++value_;  // guarded by owner_, which is never asserted
    }

  private:
    mclock::base::ThreadRole owner_;
    int value_ MCLOCK_GUARDED_BY(owner_) = 0;
};

}  // namespace

int
main()
{
    Counter c;
    c.incrementUnlocked();
    Confined f;
    f.bumpWithoutRole();
    return 0;
}
