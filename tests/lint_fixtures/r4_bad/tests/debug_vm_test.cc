// R4 fixture (bad): no injection test exercises the list-mismatch
// violation code, so the per-invariant-coverage check must flag it.
void
noInjectionTestsHere()
{
}
