// R4 fixture (bad): PgdemoteGhost has no name-table case — the
// bijection check must flag it.
enum class VmItem : int {
    PgscanActive,
    PgpromoteSuccess,
    PgdemoteGhost,
    NumItems,
};
