// R4 fixture: minimal tracepoint taxonomy.
enum class TraceEventType : int {
    MigrationStart,
};
