// R4 fixture: violation name table.
const char *
violationName(ViolationCode code)
{
    switch (code) {
      case ViolationCode::ListMismatch: return "list_mismatch";
    }
    return "unknown";
}
