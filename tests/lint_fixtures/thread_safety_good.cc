// Thread-safety fixture (good): every guarded access holds the right
// capability. Must compile clean under
//   clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety
// (the threadsafety ctest drives exactly that).
#include "base/sync.hh"

namespace {

class Counter
{
  public:
    void
    increment()
    {
        mclock::base::MutexLock lock(mu_);
        ++value_;
    }

    int
    value()
    {
        mclock::base::MutexLock lock(mu_);
        return value_;
    }

  private:
    mclock::base::Mutex mu_;
    int value_ MCLOCK_GUARDED_BY(mu_) = 0;
};

class Confined
{
  public:
    void
    bump()
    {
        owner_.assertHeld();
        ++value_;
    }

  private:
    mclock::base::ThreadRole owner_;
    int value_ MCLOCK_GUARDED_BY(owner_) = 0;
};

}  // namespace

int
main()
{
    Counter c;
    c.increment();
    Confined f;
    f.bump();
    return c.value();
}
