/**
 * @file
 * Memory-cgroup (multi-tenant isolation) tests: charge accounting
 * through migration, rollback, and teardown; hard-cap reclaim and
 * allocation fallback; deficit-round-robin promotion quotas; and the
 * determinism contract of the tenant_* harness family (jobs and shard
 * worker width must never change results). The whole suite also runs
 * under the debug-vm and tsan CI presets.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/units.hh"
#include "harness/golden.hh"
#include "harness/invariants.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "stats/vmstat.hh"
#include "vm/memcg.hh"
#include "vm/page.hh"

using namespace mclock;
using namespace mclock::sim;

namespace {

// --- Accounting units ----------------------------------------------------

TEST(MemCgroupTest, LimitsDefaultToUnlimitedAndUnprotected)
{
    MemCgroup cg(1, "t", {});
    EXPECT_EQ(cg.maxPages(0), SIZE_MAX);
    EXPECT_EQ(cg.lowPages(0), 0u);
    EXPECT_TRUE(cg.withinMax(0));
    // An empty group sits at its (zero) floor: protected until it
    // holds anything, which is exactly the memory.low semantic.
    EXPECT_TRUE(cg.lowProtected(0));
    cg.charge(0);
    EXPECT_FALSE(cg.lowProtected(0));
    EXPECT_TRUE(cg.hasPromoteCredit());  // quantum 0: unmetered
    EXPECT_TRUE(cg.consumePromoteCredit());
}

TEST(MemCgroupTest, ChargesMoveAcrossTiersExactly)
{
    MemCgroupManager mgr;
    const MemCgroupId id = mgr.create("tenant");
    EXPECT_EQ(id, 1u);
    EXPECT_TRUE(mgr.active());

    mgr.charge(id, 0);
    mgr.charge(id, 0);
    mgr.transfer(id, 0, 1);
    const MemCgroup *cg = mgr.find(id);
    ASSERT_NE(cg, nullptr);
    EXPECT_EQ(cg->charged(0), 1u);
    EXPECT_EQ(cg->charged(1), 1u);
    EXPECT_EQ(cg->chargedTotal(), 2u);
    mgr.uncharge(id, 0);
    mgr.uncharge(id, 1);
    EXPECT_EQ(cg->chargedTotal(), 0u);

    // The root id short-circuits every hook.
    mgr.charge(kRootMemcg, 0);
    mgr.uncharge(kRootMemcg, 0);
    mgr.transfer(kRootMemcg, 0, 1);
    EXPECT_TRUE(mgr.withinMax(kRootMemcg, 0));
    EXPECT_TRUE(mgr.hasPromoteCredit(kRootMemcg));
    EXPECT_EQ(mgr.find(kRootMemcg), nullptr);
}

TEST(MemCgroupTest, QuotaRefillCarriesAtMostOneQuantum)
{
    MemCgroupLimits limits;
    limits.promoteQuantum = 4;
    MemCgroup cg(1, "t", limits);
    EXPECT_FALSE(cg.hasPromoteCredit());  // no epoch yet

    cg.refillPromoteDeficit();
    EXPECT_EQ(cg.promoteDeficit(), 4u);
    ASSERT_TRUE(cg.consumePromoteCredit());
    cg.refillPromoteDeficit();
    EXPECT_EQ(cg.promoteDeficit(), 7u);  // 3 carried + 4 new

    // Unused credit saturates at two quanta: a quiet epoch cannot bank
    // an unbounded promotion burst.
    cg.refillPromoteDeficit();
    cg.refillPromoteDeficit();
    EXPECT_EQ(cg.promoteDeficit(), 8u);

    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(cg.consumePromoteCredit());
    EXPECT_FALSE(cg.consumePromoteCredit());
    EXPECT_FALSE(cg.hasPromoteCredit());
}

TEST(MemCgroupTest, P99IsExactOnTheDiscreteHistogram)
{
    MemCgroup cg(1, "t", {});
    EXPECT_EQ(cg.p99Latency(), 0u);
    for (int i = 0; i < 99; ++i)
        cg.recordLatency(10);
    cg.recordLatency(300);
    // 100 accesses: the 99th falls on the 10ns bucket exactly.
    EXPECT_EQ(cg.p99Latency(), 10u);
    cg.recordLatency(300);
    // 101 accesses: need ceil(99.99) = 100 > the 99 cheap ones.
    EXPECT_EQ(cg.p99Latency(), 300u);
    EXPECT_EQ(cg.accesses(), 101u);
}

// --- Simulator integration -----------------------------------------------

MachineConfig
twoTierMachine(std::size_t dram, std::size_t pm)
{
    MachineConfig cfg;
    cfg.nodes = {{TierKind::Dram, dram}, {TierKind::Pmem, pm}};
    return cfg;
}

/** Both invariant sweeps (structural + counters) must come back empty. */
void
expectClean(Simulator &sim)
{
    for (const auto &v : harness::collectViolations(sim))
        ADD_FAILURE() << v;
    for (const auto &v : harness::collectCounterViolations(sim))
        ADD_FAILURE() << v;
}

/**
 * Counter sweep only (includes memcg charge-vs-walk conservation and
 * swap-slot conservation). Used mid-test while pages sit isolated off
 * the LRU after direct demotePage()/promotePage() driving — the
 * structural sweep requires quiescent lists.
 */
void
expectCountersClean(Simulator &sim)
{
    for (const auto &v : harness::collectCounterViolations(sim))
        ADD_FAILURE() << v;
}

TEST(MemCgroupSimTest, ChargesFollowPlacementMigrationAndTeardown)
{
    Simulator sim(twoTierMachine(1_MiB, 4_MiB));
    sim.setPolicy(policies::makePolicy("static", {}));
    const MemCgroupId id = sim.memcg().create("tenant");

    const std::size_t pages = 64;
    const Vaddr base = sim.mmap(pages * kPageSize, true, "heap", id);
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(base + i * kPageSize);

    MemCgroup *cg = sim.memcg().find(id);
    ASSERT_NE(cg, nullptr);
    EXPECT_EQ(cg->chargedTotal(), pages);
    EXPECT_EQ(cg->charged(0), pages);  // all born in DRAM
    expectClean(sim);

    // Demotion transfers the charge, never duplicates or drops it.
    Page *pg = sim.space().lookup(base >> kPageShift);
    ASSERT_NE(pg, nullptr);
    sim.policy().onPageFreed(pg);  // isolate off the LRU
    ASSERT_TRUE(sim.demotePage(pg, Simulator::ChargeMode::Background));
    EXPECT_EQ(cg->charged(0), pages - 1);
    EXPECT_EQ(cg->charged(1), 1u);
    EXPECT_EQ(cg->chargedTotal(), pages);
    expectCountersClean(sim);

    // Promotion moves it back up.
    sim.beginShardEpoch(0, Simulator::kUnlimitedPromoteBudget);
    sim.policy().onPageFreed(pg);
    ASSERT_TRUE(sim.promotePage(pg, Simulator::ChargeMode::Background));
    EXPECT_EQ(cg->charged(0), pages);
    EXPECT_EQ(cg->charged(1), 0u);
    expectCountersClean(sim);

    // Teardown uncharges every resident page.
    sim.unmapRegion(base);
    EXPECT_EQ(cg->chargedTotal(), 0u);
    expectClean(sim);
}

TEST(MemCgroupSimTest, ChargeConservationSurvivesInjectedRollbacks)
{
    // Fault injection aborts/rolls back a healthy fraction of the
    // migration transactions; the per-tier charges must track every
    // outcome (completed, aborted, rolled back, retried) exactly. The
    // invariant sweep cross-checks charges against a full page walk.
    MachineConfig cfg = twoTierMachine(512_KiB, 2_MiB);
    cfg.faults.enabled = true;
    cfg.faults.copyFailProb = 0.2;
    cfg.faults.shootdownFailProb = 0.1;
    cfg.faults.remapFailProb = 0.1;
    cfg.faults.persistentProb = 0.05;
    Simulator sim(cfg);
    sim.setPolicy(policies::makePolicy("multiclock", {}));
    const MemCgroupId id = sim.memcg().create("tenant");

    // 2x DRAM so promotions and demotions keep flowing.
    const std::size_t pages = 256;
    const Vaddr base = sim.mmap(pages * kPageSize, true, "heap", id);
    for (int round = 0; round < 6; ++round) {
        for (std::size_t i = 0; i < pages; ++i) {
            const std::size_t page = (i * 3 + round) % pages;
            sim.read(base + page * kPageSize);
        }
    }

    const MemCgroup *cg = sim.memcg().find(id);
    ASSERT_NE(cg, nullptr);
    EXPECT_EQ(cg->chargedTotal(), pages);  // nothing evicted here
    EXPECT_GT(sim.vmstat().global(stats::VmItem::PgmigrateAbort), 0u)
        << "fault mix injected nothing; the test lost its point";
    expectClean(sim);
}

TEST(MemCgroupSimTest, HardCapReclaimsOwnPagesBeforeCharging)
{
    Simulator sim(twoTierMachine(1_MiB, 4_MiB));
    sim.setPolicy(policies::makePolicy("static", {}));
    MemCgroupLimits limits;
    limits.maxPages = {32};
    const MemCgroupId id = sim.memcg().create("capped", limits);

    const std::size_t pages = 128;
    const Vaddr base = sim.mmap(pages * kPageSize, true, "heap", id);
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(base + i * kPageSize);

    const MemCgroup *cg = sim.memcg().find(id);
    ASSERT_NE(cg, nullptr);
    // The cap held: at most 32 of the 128 pages sit in DRAM, and the
    // overflow was satisfied by the group's own demotions (limit
    // reclaim) and/or lower-tier fallback — never by failing the fault.
    EXPECT_LE(cg->charged(0), 32u);
    EXPECT_EQ(cg->chargedTotal(), pages);
    const auto &vm = sim.vmstat();
    EXPECT_GT(vm.global(stats::VmItem::MemcgLimitReclaim) +
                  vm.global(stats::VmItem::PgtenantAllocFallback),
              0u);
    expectClean(sim);

    // An uncapped root region is untouched by any of this.
    const Vaddr rootBase = sim.mmap(8 * kPageSize);
    sim.write(rootBase);
    Page *rootPg = sim.space().lookup(rootBase >> kPageShift);
    ASSERT_NE(rootPg, nullptr);
    EXPECT_EQ(rootPg->memcg(), kRootMemcg);
    expectClean(sim);
}

TEST(MemCgroupSimTest, PromotionQuotaStarvesAndRecoversPerEpoch)
{
    Simulator sim(twoTierMachine(2_MiB, 4_MiB));
    sim.setPolicy(policies::makePolicy("static", {}));
    MemCgroupLimits metered;
    metered.promoteQuantum = 1;
    const MemCgroupId slow = sim.memcg().create("slow", metered);
    const MemCgroupId fast = sim.memcg().create("fast");  // unmetered

    const std::size_t pages = 8;
    const Vaddr slowBase =
        sim.mmap(pages * kPageSize, true, "slow-heap", slow);
    const Vaddr fastBase =
        sim.mmap(pages * kPageSize, true, "fast-heap", fast);
    for (std::size_t i = 0; i < pages; ++i) {
        sim.write(slowBase + i * kPageSize);
        sim.write(fastBase + i * kPageSize);
    }

    // Park everything in PM so promotions have something to do.
    auto demoteAll = [&](Vaddr base) {
        for (std::size_t i = 0; i < pages; ++i) {
            Page *pg = sim.space().lookup((base + i * kPageSize) >>
                                          kPageShift);
            ASSERT_NE(pg, nullptr);
            if (pg->node() == 0) {
                sim.policy().onPageFreed(pg);
                ASSERT_TRUE(sim.demotePage(
                    pg, Simulator::ChargeMode::Background));
            }
        }
    };
    demoteAll(slowBase);
    demoteAll(fastBase);

    auto tryPromote = [&](Vaddr base, std::size_t i) {
        Page *pg = sim.space().lookup((base + i * kPageSize) >>
                                      kPageShift);
        sim.policy().onPageFreed(pg);
        return sim.promotePage(pg, Simulator::ChargeMode::Background);
    };

    // Epoch 1: the metered tenant gets exactly its quantum of one and
    // then starves; the unmetered tenant is never held back.
    sim.beginShardEpoch(0, Simulator::kUnlimitedPromoteBudget);
    EXPECT_TRUE(tryPromote(slowBase, 0));
    EXPECT_FALSE(tryPromote(slowBase, 1));
    EXPECT_FALSE(tryPromote(slowBase, 2));
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(tryPromote(fastBase, i));
    EXPECT_EQ(
        sim.vmstat().global(stats::VmItem::PgtenantPromoteDeferred),
        2u);

    // Epoch 2: the deficit refills (1 new + 0 carried), so the starved
    // tenant recovers instead of being locked out forever.
    sim.beginShardEpoch(1, Simulator::kUnlimitedPromoteBudget);
    EXPECT_TRUE(tryPromote(slowBase, 1));
    EXPECT_FALSE(tryPromote(slowBase, 2));
    expectCountersClean(sim);
}

// --- Harness family determinism ------------------------------------------

harness::MetricMap
runTenantSummary(const std::string &name, unsigned jobs, unsigned width)
{
    const harness::Scenario *sc = harness::findScenario(name);
    EXPECT_NE(sc, nullptr) << name;
    harness::RunnerOptions opts;
    opts.jobs = jobs;
    opts.context = harness::goldenContext();
    opts.context.shards = width;
    opts.writeArtifacts = false;
    opts.writeManifest = false;
    opts.quiet = true;
    const auto report = harness::runScenarios({sc}, opts);
    EXPECT_TRUE(report.clean());
    return report.results.front().output.summary;
}

TEST(TenantScenarioTest, NoisyNeighborJobsAndWidthIdentity)
{
    const auto j1w1 = runTenantSummary("tenant_noisy_neighbor", 1, 1);
    const auto j4w1 = runTenantSummary("tenant_noisy_neighbor", 4, 1);
    const auto j1w8 = runTenantSummary("tenant_noisy_neighbor", 1, 8);
    EXPECT_EQ(j1w1, j4w1);
    EXPECT_EQ(j1w1, j1w8);

    // The figure of merit: isolation holds the victim's p99 at its
    // solo baseline while the shared host degrades it.
    EXPECT_NEAR(j1w1.at("victim_p99_ratio_isolated"), 1.0, 0.01);
    EXPECT_GT(j1w1.at("victim_p99_ratio_shared"), 1.1);
    EXPECT_GT(j1w1.at("isolated.promote_deferred"), 0.0);
}

TEST(TenantScenarioTest, ChurnJobsAndWidthIdentity)
{
    const auto j1w1 = runTenantSummary("tenant_churn", 1, 1);
    const auto j4w1 = runTenantSummary("tenant_churn", 4, 1);
    const auto j1w8 = runTenantSummary("tenant_churn", 1, 8);
    EXPECT_EQ(j1w1, j4w1);
    EXPECT_EQ(j1w1, j1w8);

    // The waves really exercised the edges under test.
    EXPECT_GT(j1w1.at("multiclock.swap_outs"), 0.0);
    EXPECT_GT(j1w1.at("multiclock.alloc_fallbacks"), 0.0);
    EXPECT_GT(j1w1.at("multiclock.limit_reclaims"), 0.0);
    EXPECT_GT(j1w1.at("multiclock.slot_releases"), 0.0);
    EXPECT_EQ(j1w1.at("multiclock.leaked_charges"), 0.0);
    EXPECT_EQ(j1w1.at("static.leaked_charges"), 0.0);
}

}  // namespace
