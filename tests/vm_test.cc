/**
 * @file
 * Unit tests for the vm module: pages, address spaces, swap.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"
#include "vm/page.hh"
#include "vm/swap.hh"

namespace mclock {
namespace {

// --- Page --------------------------------------------------------------------

TEST(PageTest, InitialState)
{
    AddressSpace space;
    Page pg(&space, 12, /*anon=*/true);
    EXPECT_EQ(pg.vpn(), 12u);
    EXPECT_EQ(pg.vaddr(), 12u * kPageSize);
    EXPECT_TRUE(pg.isAnon());
    EXPECT_FALSE(pg.resident());
    EXPECT_FALSE(pg.referenced());
    EXPECT_FALSE(pg.active());
    EXPECT_FALSE(pg.promoteFlag());
    EXPECT_FALSE(pg.dirty());
    EXPECT_FALSE(pg.pteReferenced());
    EXPECT_EQ(pg.list(), LruListKind::None);
    EXPECT_FALSE(pg.onLru());
}

TEST(PageTest, PlacementRoundTrip)
{
    AddressSpace space;
    Page pg(&space, 0, true);
    pg.placeOn(2, 0x5000);
    EXPECT_TRUE(pg.resident());
    EXPECT_EQ(pg.node(), 2);
    EXPECT_EQ(pg.paddr(), 0x5000u);
    pg.unplace();
    EXPECT_FALSE(pg.resident());
}

TEST(PageTest, TestAndClearPteReferenced)
{
    AddressSpace space;
    Page pg(&space, 0, true);
    EXPECT_FALSE(pg.testAndClearPteReferenced());
    pg.setPteReferenced(true);
    EXPECT_TRUE(pg.testAndClearPteReferenced());
    EXPECT_FALSE(pg.pteReferenced());
    EXPECT_FALSE(pg.testAndClearPteReferenced());
}

TEST(PageTest, HistoryShifting)
{
    AddressSpace space;
    Page pg(&space, 0, true);
    pg.shiftHistory(true);
    pg.shiftHistory(false);
    pg.shiftHistory(true);
    EXPECT_EQ(pg.historyBits(), 0b101);
    for (int i = 0; i < 8; ++i)
        pg.shiftHistory(false);
    EXPECT_EQ(pg.historyBits(), 0);
}

TEST(PageTest, ListKindPredicates)
{
    EXPECT_TRUE(isPromoteList(LruListKind::PromoteAnon));
    EXPECT_TRUE(isPromoteList(LruListKind::PromoteFile));
    EXPECT_FALSE(isPromoteList(LruListKind::ActiveAnon));
    EXPECT_TRUE(isActiveList(LruListKind::ActiveFile));
    EXPECT_TRUE(isInactiveList(LruListKind::InactiveAnon));
    EXPECT_FALSE(isInactiveList(LruListKind::Unevictable));
}

TEST(PageTest, ListNames)
{
    EXPECT_STREQ(lruListName(LruListKind::PromoteAnon), "promote_anon");
    EXPECT_STREQ(lruListName(LruListKind::InactiveFile),
                 "inactive_file");
    EXPECT_STREQ(lruListName(LruListKind::None), "none");
}

// --- AddressSpace ---------------------------------------------------------------

TEST(AddressSpaceTest, MmapRoundsToPages)
{
    AddressSpace space;
    const Vaddr a = space.mmap(1);
    const Vaddr b = space.mmap(kPageSize + 1);
    EXPECT_EQ(a % kPageSize, 0u);
    EXPECT_EQ(b, a + kPageSize);  // first region occupied one page
    EXPECT_EQ(space.regions().size(), 2u);
    EXPECT_EQ(space.regions()[1].bytes, 2 * kPageSize);
}

TEST(AddressSpaceTest, RegionLookup)
{
    AddressSpace space;
    const Vaddr a = space.mmap(4 * kPageSize, /*anon=*/true, "heap");
    const Region *r = space.regionOf(a + 3 * kPageSize);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->name, "heap");
    EXPECT_EQ(space.regionOf(a + 4 * kPageSize), nullptr);
}

TEST(AddressSpaceTest, LazyPageCreation)
{
    AddressSpace space;
    const Vaddr a = space.mmap(2 * kPageSize, /*anon=*/false, "file");
    const PageNum vpn = pageNumOf(a);
    EXPECT_EQ(space.lookup(vpn), nullptr);
    Page *pg = space.createPage(vpn);
    ASSERT_NE(pg, nullptr);
    EXPECT_EQ(space.lookup(vpn), pg);
    EXPECT_FALSE(pg->isAnon());  // inherits the region's file backing
    EXPECT_EQ(space.pageCount(), 1u);
}

TEST(AddressSpaceTest, DestroyPage)
{
    AddressSpace space;
    const Vaddr a = space.mmap(kPageSize);
    Page *pg = space.createPage(pageNumOf(a));
    ASSERT_NE(pg, nullptr);
    space.destroyPage(pageNumOf(a));
    EXPECT_EQ(space.lookup(pageNumOf(a)), nullptr);
    EXPECT_EQ(space.pageCount(), 0u);
}

TEST(AddressSpaceTest, MunmapForgetsRegion)
{
    AddressSpace space;
    const Vaddr a = space.mmap(kPageSize, true, "tmp");
    space.munmap(a);
    EXPECT_EQ(space.regionOf(a), nullptr);
}

TEST(AddressSpaceTest, ForEachPageVisitsLivePages)
{
    AddressSpace space;
    const Vaddr a = space.mmap(8 * kPageSize);
    space.createPage(pageNumOf(a));
    space.createPage(pageNumOf(a) + 3);
    int count = 0;
    space.forEachPage([&](Page *) { ++count; });
    EXPECT_EQ(count, 2);
}

// --- SwapDevice ---------------------------------------------------------------

TEST(SwapDeviceTest, AnonConsumesSlots)
{
    AddressSpace space;
    SwapDevice swap(2);
    Page a(&space, 0, /*anon=*/true);
    Page b(&space, 1, /*anon=*/true);
    EXPECT_TRUE(swap.hasSpace());
    swap.pageOut(&a);
    swap.pageOut(&b);
    EXPECT_FALSE(swap.hasSpace());
    EXPECT_EQ(swap.usedSlots(), 2u);
    swap.pageIn(&a);
    EXPECT_TRUE(swap.hasSpace());
    EXPECT_EQ(swap.pageIns(), 1u);
}

TEST(SwapDeviceTest, FilePagesDontConsumeSlots)
{
    AddressSpace space;
    SwapDevice swap(1);
    Page f(&space, 0, /*anon=*/false);
    swap.pageOut(&f);
    EXPECT_EQ(swap.usedSlots(), 0u);
    EXPECT_TRUE(swap.hasSpace());
    EXPECT_EQ(swap.pageOuts(), 1u);
}

TEST(SwapDeviceTest, UnlimitedCapacity)
{
    AddressSpace space;
    SwapDevice swap(0);
    Page a(&space, 0, true);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(swap.hasSpace());
    swap.pageOut(&a);
    EXPECT_TRUE(swap.hasSpace());
}

TEST(SwapDeviceTest, SlotFreedByPageInIsReusable)
{
    AddressSpace space;
    SwapDevice swap(1);
    Page a(&space, 0, true);
    Page b(&space, 1, true);
    swap.pageOut(&a);
    EXPECT_FALSE(swap.hasSpace());
    swap.pageIn(&a);
    // The freed slot serves a different page.
    EXPECT_TRUE(swap.hasSpace());
    swap.pageOut(&b);
    EXPECT_EQ(swap.usedSlots(), 1u);
    EXPECT_FALSE(swap.hasSpace());
}

TEST(SwapDeviceTest, ExhaustionCycleKeepsCumulativeCounters)
{
    AddressSpace space;
    SwapDevice swap(2);
    Page a(&space, 0, true);
    Page b(&space, 1, true);
    // Three full out/in cycles through a 2-slot device: occupancy
    // returns to zero each cycle while the traffic counters accumulate.
    for (int cycle = 0; cycle < 3; ++cycle) {
        swap.pageOut(&a);
        swap.pageOut(&b);
        EXPECT_FALSE(swap.hasSpace());
        EXPECT_EQ(swap.usedSlots(), 2u);
        swap.pageIn(&b);
        swap.pageIn(&a);
        EXPECT_EQ(swap.usedSlots(), 0u);
    }
    EXPECT_EQ(swap.pageOuts(), 6u);
    EXPECT_EQ(swap.pageIns(), 6u);
}

TEST(SwapDeviceTest, PageInWithoutSlotIsHarmless)
{
    AddressSpace space;
    SwapDevice swap(1);
    Page a(&space, 0, true);
    // A file-backed-style page-in (or a page never swapped out) must
    // not underflow the slot accounting.
    swap.pageIn(&a);
    EXPECT_EQ(swap.usedSlots(), 0u);
    EXPECT_EQ(swap.pageIns(), 1u);
    EXPECT_TRUE(swap.hasSpace());
}

}  // namespace
}  // namespace mclock
