/**
 * @file
 * Unit tests for the GAPBS substrate: generator, builder, and kernel
 * correctness on small known graphs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <queue>

#include "base/units.hh"
#include "policies/static_tiering.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/gapbs/bc.hh"
#include "workloads/gapbs/bfs.hh"
#include "workloads/gapbs/builder.hh"
#include "workloads/gapbs/cc.hh"
#include "workloads/gapbs/driver.hh"
#include "workloads/gapbs/generator.hh"
#include "workloads/gapbs/pr.hh"
#include "workloads/gapbs/sssp.hh"
#include "workloads/gapbs/tc.hh"

namespace mclock {
namespace workloads {
namespace gapbs {
namespace {

std::unique_ptr<sim::Simulator>
makeSim()
{
    sim::MachineConfig cfg = sim::tinyTestMachine();
    cfg.swapPages = 0;
    auto sim = std::make_unique<sim::Simulator>(cfg);
    sim->setPolicy(std::make_unique<policies::StaticTieringPolicy>());
    return sim;
}

// --- Generators -------------------------------------------------------------

TEST(GeneratorTest, KroneckerSizing)
{
    Rng rng(1);
    const auto edges = makeKroneckerEdges(8, 4, rng);
    EXPECT_EQ(edges.size(), 256u * 4);
    for (const auto &e : edges) {
        EXPECT_LT(e.u, 256u);
        EXPECT_LT(e.v, 256u);
    }
}

TEST(GeneratorTest, KroneckerIsSkewed)
{
    Rng rng(2);
    const auto edges = makeKroneckerEdges(10, 8, rng);
    std::vector<int> degree(1024, 0);
    for (const auto &e : edges)
        ++degree[e.u];
    int maxDeg = 0;
    for (int d : degree)
        maxDeg = std::max(maxDeg, d);
    // RMAT hubs: max degree far above the average (8).
    EXPECT_GT(maxDeg, 40);
}

TEST(GeneratorTest, UniformIsNotSkewed)
{
    Rng rng(3);
    const auto edges = makeUniformEdges(10, 8, rng);
    std::vector<int> degree(1024, 0);
    for (const auto &e : edges)
        ++degree[e.u];
    int maxDeg = 0;
    for (int d : degree)
        maxDeg = std::max(maxDeg, d);
    EXPECT_LT(maxDeg, 40);
}

TEST(GeneratorTest, WeightsInRange)
{
    Rng rng(4);
    auto edges = makeUniformEdges(6, 4, rng);
    assignWeights(edges, 64, rng);
    for (const auto &e : edges) {
        EXPECT_GE(e.w, 1u);
        EXPECT_LE(e.w, 64u);
    }
}

// --- Builder ----------------------------------------------------------------

TEST(BuilderTest, TinyGraphCsr)
{
    auto sim = makeSim();
    // Path 0-1-2 plus edge 1-3.
    std::vector<Edge> edges{{0, 1}, {1, 2}, {1, 3}};
    BuildOptions opts;  // symmetrize on
    auto g = Builder::build(*sim, edges, opts);
    EXPECT_EQ(g->numVertices(), 4u);
    EXPECT_EQ(g->numEdges(), 6u);  // symmetrized
    EXPECT_EQ(g->peekDegree(0), 1u);
    EXPECT_EQ(g->peekDegree(1), 3u);
    EXPECT_EQ(g->peekDegree(2), 1u);
    EXPECT_EQ(g->peekDegree(3), 1u);
}

TEST(BuilderTest, RemovesSelfLoops)
{
    auto sim = makeSim();
    std::vector<Edge> edges{{0, 0}, {0, 1}, {1, 1}};
    BuildOptions opts;
    auto g = Builder::build(*sim, edges, opts);
    EXPECT_EQ(g->numEdges(), 2u);  // only 0-1 both ways
}

TEST(BuilderTest, SortAndDedup)
{
    auto sim = makeSim();
    std::vector<Edge> edges{{0, 1}, {0, 1}, {0, 2}, {0, 1}};
    BuildOptions opts;
    opts.symmetrize = false;
    opts.sortAndDedupNeighbors = true;
    auto g = Builder::build(*sim, edges, opts);
    EXPECT_EQ(g->peekDegree(0), 2u);
    EXPECT_EQ(g->peekNeighbor(0), 1u);
    EXPECT_EQ(g->peekNeighbor(1), 2u);
}

TEST(BuilderTest, KeepsWeights)
{
    auto sim = makeSim();
    std::vector<Edge> edges{{0, 1, 7}};
    BuildOptions opts;
    opts.keepWeights = true;
    auto g = Builder::build(*sim, edges, opts);
    ASSERT_TRUE(g->weighted());
    EXPECT_EQ(g->weight(g->peekOffset(0)), 7u);
}

TEST(BuilderTest, RelabelByDegreePutsHubsFirst)
{
    auto sim = makeSim();
    // Star around vertex 3 plus an extra edge.
    std::vector<Edge> edges{{3, 0}, {3, 1}, {3, 2}, {0, 1}};
    BuildOptions opts;
    opts.relabelByDegree = true;
    auto g = Builder::build(*sim, edges, opts);
    // The hub (old vertex 3, degree 3) becomes vertex 0.
    EXPECT_EQ(g->peekDegree(0), 3u);
}

// --- Kernels on a known graph --------------------------------------------------

class KernelTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sim_ = makeSim();
        // Two components:
        //   0-1-2-3 path with a 1-3 chord; isolated pair 4-5.
        std::vector<Edge> edges{{0, 1, 2},  {1, 2, 3},
                                {2, 3, 1},  {1, 3, 10},
                                {4, 5, 4}};
        BuildOptions opts;
        opts.keepWeights = true;
        graph_ = Builder::build(*sim_, edges, opts);
    }

    std::unique_ptr<sim::Simulator> sim_;
    std::unique_ptr<Graph> graph_;
};

TEST_F(KernelTest, BfsVisitsComponent)
{
    const BfsResult r = bfs(*sim_, *graph_, 0);
    EXPECT_EQ(r.visited, 4u);
    EXPECT_EQ(r.maxDepth, 2u);  // 0->1->{2,3}
}

TEST_F(KernelTest, BfsFromOtherComponent)
{
    const BfsResult r = bfs(*sim_, *graph_, 4);
    EXPECT_EQ(r.visited, 2u);
    EXPECT_EQ(r.maxDepth, 1u);
}

TEST_F(KernelTest, SsspDistances)
{
    const SsspResult r = sssp(*sim_, *graph_, 0);
    // dist: 0=0, 1=2, 2=5, 3=6 (0-1-2-3; the chord 1-3 costs 12).
    EXPECT_EQ(r.reached, 4u);
    EXPECT_EQ(r.distanceSum, 0u + 2 + 5 + 6);
}

TEST_F(KernelTest, SsspUnreachableStaysInfinite)
{
    const SsspResult r = sssp(*sim_, *graph_, 4);
    EXPECT_EQ(r.reached, 2u);  // 4 and 5 only
    EXPECT_EQ(r.distanceSum, 4u);
}

TEST_F(KernelTest, PagerankSumsToOne)
{
    const PrResult r = pagerank(*sim_, *graph_, 20);
    EXPECT_NEAR(r.scoreSum, 1.0, 1e-6);
    EXPECT_GT(r.maxScore, 1.0 / 6.0);  // vertex 1 or 3 dominates
}

TEST_F(KernelTest, ConnectedComponentsCount)
{
    const CcResult r = connectedComponents(*sim_, *graph_);
    EXPECT_EQ(r.components, 2u);
}

TEST_F(KernelTest, BetweennessPathCenter)
{
    auto sim = makeSim();
    // Path 0-1-2: vertex 1 carries all pairwise shortest paths.
    std::vector<Edge> edges{{0, 1}, {1, 2}};
    BuildOptions opts;
    auto g = Builder::build(*sim, edges, opts);
    // Run from every vertex deterministically by sampling 3 sources
    // with a fixed seed is flaky; instead verify the aggregate: over
    // enough samples, vertex 1's score must dominate.
    const BcResult r = betweenness(*sim, *g, 6, 42);
    EXPECT_GT(r.scoreSum, 0.0);
    EXPECT_GT(r.maxScore, 0.0);
}

TEST(TcTest, CountsKnownTriangles)
{
    auto sim = makeSim();
    // A triangle 0-1-2 plus a pendant edge 2-3.
    std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}, {2, 3}};
    BuildOptions opts;
    opts.sortAndDedupNeighbors = true;
    auto g = Builder::build(*sim, edges, opts);
    const TcResult r = triangleCount(*sim, *g);
    EXPECT_EQ(r.triangles, 1u);
}

TEST(TcTest, TwoTriangles)
{
    auto sim = makeSim();
    std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2},
                            {2, 3}, {3, 4}, {2, 4}};
    BuildOptions opts;
    opts.sortAndDedupNeighbors = true;
    opts.relabelByDegree = true;
    auto g = Builder::build(*sim, edges, opts);
    EXPECT_EQ(triangleCount(*sim, *g).triangles, 2u);
}

TEST(TcTest, CompleteGraphK5)
{
    auto sim = makeSim();
    std::vector<Edge> edges;
    for (GNode u = 0; u < 5; ++u) {
        for (GNode v = u + 1; v < 5; ++v)
            edges.push_back({u, v});
    }
    BuildOptions opts;
    opts.sortAndDedupNeighbors = true;
    auto g = Builder::build(*sim, edges, opts);
    EXPECT_EQ(triangleCount(*sim, *g).triangles, 10u);  // C(5,3)
}


TEST(BcOracleTest, ExactValuesOnPathGraph)
{
    auto sim = makeSim();
    // Path 0-1-2-3: exact (unnormalised, both directions) BC is
    // vertex1 = vertex2 = 2 + 2 = ... computed by Brandes from all
    // sources: BC(1) = BC(2) = 4, endpoints 0.
    std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
    BuildOptions opts;
    auto g = Builder::build(*sim, edges, opts);
    const BcResult r = betweennessFromSources(*sim, *g, {0, 1, 2, 3});
    // Hand computation (directed-pair dependencies, endpoints excl.):
    // pairs through 1: (0,2),(0,3),(2,0),(3,0),(3,2)? -> via Brandes
    // delta sums: sigma is 1 on a path, so BC(v) = #ordered pairs
    // (s,t) whose shortest path passes through v:
    //   vertex 1: (0,2),(0,3),(2,0),(3,0) = 4
    //   vertex 2: (0,3),(1,3),(3,0),(3,1) = 4
    EXPECT_DOUBLE_EQ(r.scoreSum, 8.0);
    EXPECT_DOUBLE_EQ(r.maxScore, 4.0);
}

TEST(BcOracleTest, StarCenterCarriesAllPairs)
{
    auto sim = makeSim();
    // Star: center 0 with leaves 1..4. Every leaf pair's path passes
    // through the center: 4*3 = 12 ordered pairs.
    std::vector<Edge> edges{{0, 1}, {0, 2}, {0, 3}, {0, 4}};
    BuildOptions opts;
    auto g = Builder::build(*sim, edges, opts);
    const BcResult r =
        betweennessFromSources(*sim, *g, {0, 1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(r.maxScore, 12.0);
    EXPECT_DOUBLE_EQ(r.scoreSum, 12.0);  // leaves are never interior
}

// --- SSSP against a host-side Dijkstra oracle ------------------------------------

TEST(SsspOracleTest, MatchesDijkstraOnRandomGraph)
{
    auto sim = makeSim();
    Rng rng(17);
    auto edges = makeUniformEdges(7, 4, rng);  // 128 vertices
    assignWeights(edges, 32, rng);
    BuildOptions opts;
    opts.keepWeights = true;
    auto g = Builder::build(*sim, edges, opts);

    const SsspResult r = sssp(*sim, *g, 0);

    // Host Dijkstra on the same CSR (peek access only).
    const std::size_t n = g->numVertices();
    constexpr std::uint32_t kInf = ~0u;
    std::vector<std::uint32_t> dist(n, kInf);
    using Entry = std::pair<std::uint32_t, GNode>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[0] = 0;
    pq.push({0, 0});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u])
            continue;
        for (std::uint64_t e = g->peekOffset(u);
             e < g->peekOffset(u + 1); ++e) {
            const GNode v = g->peekNeighbor(e);
            const std::uint32_t cand = d + g->weight(e);
            if (cand < dist[v]) {
                dist[v] = cand;
                pq.push({cand, v});
            }
        }
    }
    std::uint64_t reached = 0, sum = 0;
    for (std::uint32_t d : dist) {
        if (d != kInf) {
            ++reached;
            sum += d;
        }
    }
    EXPECT_EQ(r.reached, reached);
    EXPECT_EQ(r.distanceSum, sum);
}

// --- Driver ------------------------------------------------------------------------

TEST(DriverTest, KernelNames)
{
    EXPECT_STREQ(kernelName(Kernel::BFS), "bfs");
    EXPECT_STREQ(kernelName(Kernel::TC), "tc");
}

TEST(DriverTest, RunsTrialsAndReportsTimes)
{
    auto sim = makeSim();
    GapbsConfig cfg;
    cfg.scale = 8;
    cfg.degree = 4;
    cfg.trials = 2;
    cfg.prIters = 3;
    GapbsDriver driver(*sim, cfg);
    const GapbsResult r = driver.run(Kernel::PR);
    EXPECT_EQ(r.kernel, "pr");
    ASSERT_EQ(r.trialSeconds.size(), 2u);
    EXPECT_GT(r.trialSeconds[0], 0.0);
    EXPECT_GT(r.avgTrialSeconds(), 0.0);
}

TEST(DriverTest, TcUsesSmallerUniformGraph)
{
    auto sim = makeSim();
    GapbsConfig cfg;
    cfg.scale = 10;
    cfg.degree = 8;
    cfg.trials = 1;
    cfg.tcScale = 6;
    cfg.tcDegree = 4;
    GapbsDriver driver(*sim, cfg);
    const GapbsResult r = driver.run(Kernel::TC);
    EXPECT_EQ(r.kernel, "tc");
    EXPECT_EQ(r.trialSeconds.size(), 1u);
}

}  // namespace
}  // namespace gapbs
}  // namespace workloads
}  // namespace mclock
