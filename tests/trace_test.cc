/**
 * @file
 * Unit tests for tracing: AccessTrace, Heatmap (Fig. 1 machinery),
 * and the observation/performance window analysis (Fig. 2 machinery).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/units.hh"
#include "policies/static_tiering.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/synthetic.hh"
#include "trace/access_trace.hh"
#include "trace/heatmap.hh"
#include "trace/window_analysis.hh"

namespace mclock {
namespace trace {
namespace {

// --- AccessTrace -----------------------------------------------------------

TEST(AccessTraceTest, RecordsInOrder)
{
    AccessTrace trace;
    EXPECT_TRUE(trace.empty());
    trace.record(3, 10);
    trace.record(5, 20);
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.events()[0].page, 3u);
    EXPECT_EQ(trace.endTime(), 20u);
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.endTime(), 0u);
}

// --- Heatmap ----------------------------------------------------------------

TEST(HeatmapTest, SamplesRequestedPages)
{
    AccessTrace trace;
    for (std::uint32_t p = 0; p < 100; ++p)
        trace.record(p, p * 100);
    HeatmapConfig cfg;
    cfg.sampledPages = 10;
    cfg.timeBuckets = 4;
    const Heatmap hm = Heatmap::build(trace, 100, cfg);
    EXPECT_EQ(hm.numRows(), 10u);
    EXPECT_EQ(hm.numBuckets(), 4u);
    // Rows sorted ascending by page id.
    for (std::size_t r = 1; r < hm.numRows(); ++r)
        EXPECT_LT(hm.pageAt(r - 1), hm.pageAt(r));
}

TEST(HeatmapTest, CountsLandInRightBucket)
{
    AccessTrace trace;
    // Page 0: early accesses; page 1: late accesses.
    for (int i = 0; i < 5; ++i)
        trace.record(0, 10);
    for (int i = 0; i < 7; ++i)
        trace.record(1, 990);
    trace.record(2, 1000);  // defines endTime
    HeatmapConfig cfg;
    cfg.sampledPages = 3;  // samples all 3 pages
    cfg.timeBuckets = 10;
    const Heatmap hm = Heatmap::build(trace, 3, cfg);
    ASSERT_EQ(hm.numRows(), 3u);
    EXPECT_EQ(hm.count(0, 0), 5u);
    EXPECT_EQ(hm.count(1, 9), 7u);
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t b = 0; b < 10; ++b)
            total += hm.count(r, b);
    }
    EXPECT_EQ(total, 13u);
}

TEST(HeatmapTest, CsvOutput)
{
    AccessTrace trace;
    trace.record(0, 1);
    trace.record(1, 2);
    HeatmapConfig cfg;
    cfg.sampledPages = 2;
    cfg.timeBuckets = 2;
    const Heatmap hm = Heatmap::build(trace, 2, cfg);
    CsvWriter csv;
    hm.writeCsv(csv);
    const std::string out = csv.str();
    EXPECT_NE(out.find("page,t0,t1"), std::string::npos);
    EXPECT_NE(out.find("\n0,"), std::string::npos);
}

TEST(HeatmapTest, RenderProducesRows)
{
    AccessTrace trace;
    trace.record(0, 1);
    HeatmapConfig cfg;
    cfg.sampledPages = 1;
    cfg.timeBuckets = 8;
    const Heatmap hm = Heatmap::build(trace, 1, cfg);
    std::ostringstream os;
    hm.render(os);
    EXPECT_NE(os.str().find('#'), std::string::npos);
}

// --- Window analysis -----------------------------------------------------------

TEST(WindowAnalysisTest, SeparatesSingleAndMulti)
{
    AccessTrace trace;
    // Pair 0: observation [0,100), performance [100,200).
    // Page 1: accessed once in obs, 3 times in perf.
    trace.record(1, 10);
    trace.record(1, 110);
    trace.record(1, 120);
    trace.record(1, 130);
    // Page 2: accessed 3 times in obs, 6 times in perf.
    for (SimTime t : {20u, 30u, 40u})
        trace.record(2, t);
    for (SimTime t : {110u, 120u, 130u, 140u, 150u, 160u})
        trace.record(2, t);
    const WindowAnalysisResult r = analyzeWindows(trace, 100, 100);
    EXPECT_EQ(r.singleSamples, 1u);
    EXPECT_EQ(r.multiSamples, 1u);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 3.0);
    EXPECT_DOUBLE_EQ(r.multiMeanPerfAccesses, 6.0);
    EXPECT_DOUBLE_EQ(r.ratio(), 2.0);
}

TEST(WindowAnalysisTest, MultipleWindowPairs)
{
    AccessTrace trace;
    // Pair 0: page 1 accessed twice in obs, once in perf.
    trace.record(1, 10);
    trace.record(1, 20);
    trace.record(1, 150);
    // Pair 1 (starts at 200): page 1 accessed once in obs, 0 in perf.
    trace.record(1, 210);
    const WindowAnalysisResult r = analyzeWindows(trace, 100, 100);
    EXPECT_EQ(r.multiSamples, 1u);
    EXPECT_EQ(r.singleSamples, 1u);
    EXPECT_DOUBLE_EQ(r.multiMeanPerfAccesses, 1.0);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 0.0);
}

TEST(WindowAnalysisTest, PerfOnlyPagesIgnored)
{
    AccessTrace trace;
    trace.record(7, 150);  // performance window only
    const WindowAnalysisResult r = analyzeWindows(trace, 100, 100);
    EXPECT_EQ(r.singleSamples, 0u);
    EXPECT_EQ(r.multiSamples, 0u);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(WindowAnalysisTest, EmptyTraceYieldsZeroes)
{
    AccessTrace trace;
    const WindowAnalysisResult r = analyzeWindows(trace, 100, 100);
    EXPECT_EQ(r.singleSamples, 0u);
    EXPECT_EQ(r.multiSamples, 0u);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 0.0);
    EXPECT_DOUBLE_EQ(r.multiMeanPerfAccesses, 0.0);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(WindowAnalysisTest, ObsOnlyAccessesCountWithZeroPerfMean)
{
    AccessTrace trace;
    // Single pair, both pages touched only during observation: they
    // still produce samples (one single, one multi) whose performance
    // means are zero, so the ratio stays zero rather than dividing by
    // a zero single-window mean.
    trace.record(1, 10);
    trace.record(2, 20);
    trace.record(2, 30);
    const WindowAnalysisResult r = analyzeWindows(trace, 100, 100);
    EXPECT_EQ(r.singleSamples, 1u);
    EXPECT_EQ(r.multiSamples, 1u);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 0.0);
    EXPECT_DOUBLE_EQ(r.multiMeanPerfAccesses, 0.0);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.0);
}

TEST(WindowAnalysisTest, TraceShorterThanOnePeriod)
{
    AccessTrace trace;
    // All events fit inside the first observation window; the partial
    // pair is still analyzed.
    trace.record(5, 1);
    trace.record(5, 2);
    trace.record(6, 3);
    const WindowAnalysisResult r =
        analyzeWindows(trace, 1000, 1000);
    EXPECT_EQ(r.multiSamples, 1u);
    EXPECT_EQ(r.singleSamples, 1u);
    EXPECT_DOUBLE_EQ(r.multiMeanPerfAccesses, 0.0);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 0.0);
}

TEST(WindowAnalysisTest, AsymmetricWindowBoundaries)
{
    AccessTrace trace;
    // obs=10, perf=90: period 100. An access at t=10 is already in
    // the performance window, so page 1 is perf-only in pair 0 and
    // ignored there; its obs access in pair 1 (t=105) makes it a
    // single sample with 2 perf accesses (t=115, 160).
    trace.record(1, 10);
    trace.record(1, 105);
    trace.record(1, 115);
    trace.record(1, 160);
    const WindowAnalysisResult r = analyzeWindows(trace, 10, 90);
    EXPECT_EQ(r.singleSamples, 1u);
    EXPECT_EQ(r.multiSamples, 0u);
    EXPECT_DOUBLE_EQ(r.singleMeanPerfAccesses, 2.0);
}


// --- Cross-module: the motivation pipeline end-to-end -------------------------

TEST(MotivationPipelineTest, TierFriendlyGroupsAlternateInHeatmap)
{
    // Run a synthetic profile, build its heatmap, and verify the
    // bimodal structure the paper's Fig. 1 motivates: a tier-friendly
    // page is hot in some time buckets and silent in others, while a
    // DRAM-friendly page is hot throughout.
    sim::Simulator sim(sim::tinyTestMachine());
    sim.setPolicy(std::make_unique<policies::StaticTieringPolicy>());
    workloads::SyntheticConfig cfg;
    cfg.numPages = 200;
    cfg.duration = 40_s;
    cfg.step = 20_ms;
    workloads::SyntheticWorkload workload(
        sim, workloads::SyntheticProfile::Rubis, cfg);
    AccessTrace trace;
    workload.run(&trace);

    // Rubis shape: 15% DRAM-friendly ([0,30)), 45% infrequent
    // ([30,120)), tier-friendly groups from 120, 4 groups x 20 s
    // phases over a 40 s run -> only groups 0 and 1 ever activate.
    HeatmapConfig hmCfg;
    hmCfg.sampledPages = 200;  // sample everything
    hmCfg.timeBuckets = 8;     // 5 s buckets
    const Heatmap hm = Heatmap::build(trace, cfg.numPages, hmCfg);

    auto rowOf = [&](std::uint32_t page) {
        for (std::size_t r = 0; r < hm.numRows(); ++r) {
            if (hm.pageAt(r) == page)
                return r;
        }
        ADD_FAILURE() << "page not sampled";
        return std::size_t{0};
    };

    // DRAM-friendly page 0: active in every bucket.
    const std::size_t dramRow = rowOf(0);
    for (std::size_t b = 0; b < hm.numBuckets(); ++b)
        EXPECT_GT(hm.count(dramRow, b), 0u) << "bucket " << b;

    // A page of tier-friendly group 0 (starts at index 120): hot in
    // the first phase, idle in the second.
    const std::size_t g0 = rowOf(120);
    std::uint64_t firstHalf = 0, secondHalf = 0;
    for (std::size_t b = 0; b < 4; ++b)
        firstHalf += hm.count(g0, b);
    for (std::size_t b = 4; b < 8; ++b)
        secondHalf += hm.count(g0, b);
    EXPECT_GT(firstHalf, 0u);
    EXPECT_GT(firstHalf, secondHalf * 5);

    // And the window analysis confirms the Fig. 2 hypothesis on the
    // same trace.
    const auto wa = analyzeWindows(trace, 2_s, 2_s);
    EXPECT_GT(wa.multiMeanPerfAccesses, wa.singleMeanPerfAccesses);
}

}  // namespace
}  // namespace trace
}  // namespace mclock
