#!/usr/bin/env python3
"""Back-compat shim: the taxonomy cross-check now lives in
tools/mclock_lint.py as rule R4-taxonomy (alongside the determinism
rules R1-R3). This wrapper keeps the old entry point and CLI
(`lint_counters.py [repo-root]`) working for scripts and muscle
memory; new callers should invoke mclock_lint.py directly.
"""

import pathlib
import subprocess
import sys


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    engine = pathlib.Path(__file__).resolve().parent / "mclock_lint.py"
    return subprocess.call(
        [sys.executable, str(engine), "--root", root, "--rules", "R4"])


if __name__ == "__main__":
    sys.exit(main())
