#!/usr/bin/env python3
"""Taxonomy cross-check lint.

The observability stack names the same events in four places: the
VmItem / TraceEventType / ViolationCode enums, their name tables, the
DESIGN.md documentation tables, and (for violation codes) the
violation-injection test suite. Nothing ties those together at compile
time, so they drift silently. This lint re-derives each list from
source with regexes and fails on any asymmetric difference:

  1. every VmItem enumerator has a vmItemName() case and vice versa,
     and every resulting snake_case name appears in DESIGN.md 6a
     (and every backticked pg*/psw*/k*wake name in 6a exists);
  2. the same bijection for TraceEventType <-> traceEventName() <->
     the DESIGN.md 6a tracepoint list;
  3. the same for ViolationCode <-> violationName() <-> the DESIGN.md
     6c table, plus: every violation code must be exercised by name in
     tests/debug_vm_test.cc (one injection test per invariant class).

Usage: lint_counters.py [repo-root]   (exit 0 clean, 1 on drift)
"""

import pathlib
import re
import sys


def parse_enum(text, enum_name):
    """Enumerator names of `enum class <enum_name> ... { ... }`."""
    m = re.search(
        r"enum\s+class\s+" + enum_name + r"\s*(?::[^({]*)?\{(.*?)\}",
        text,
        re.S,
    )
    if not m:
        raise SystemExit(f"lint_counters: enum {enum_name} not found")
    body = re.sub(r"//[^\n]*|/\*.*?\*/", "", m.group(1), flags=re.S)
    names = []
    for entry in body.split(","):
        entry = entry.split("=")[0].strip()
        if entry and entry not in ("NumItems", "NumCodes"):
            names.append(entry)
    return names


def parse_name_table(text, enum_name):
    """Mapping enumerator -> string from `case Enum::X: return "x";`."""
    pairs = re.findall(
        r"case\s+" + enum_name + r"::(\w+)\s*:\s*return\s+\"([^\"]+)\"",
        text,
    )
    return dict(pairs)


def backticked(text):
    return set(re.findall(r"`([a-z0-9_]+)`", text))


class Lint:
    def __init__(self):
        self.errors = []

    def error(self, msg):
        self.errors.append(msg)

    def check_bijection(self, what, enumerators, table):
        for e in enumerators:
            if e not in table:
                self.error(f"{what}: enumerator {e} has no name-table case")
        for e in table:
            if e not in enumerators:
                self.error(f"{what}: name-table case {e} is not an "
                           f"enumerator")
        names = list(table.values())
        for n in names:
            if names.count(n) > 1:
                self.error(f"{what}: duplicate name {n!r}")

    def check_documented(self, what, names, doc_section, doc_names):
        for n in sorted(names):
            if n not in doc_names:
                self.error(f"{what}: {n!r} missing from DESIGN.md "
                           f"{doc_section}")


def design_section(design, heading):
    """Text of one `## <heading>` section (to the next `## `)."""
    m = re.search(
        r"^## " + re.escape(heading) + r"[^\n]*\n(.*?)(?=^## |\Z)",
        design,
        re.S | re.M,
    )
    if not m:
        raise SystemExit(f"lint_counters: DESIGN.md section "
                         f"{heading!r} not found")
    return m.group(1)


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    read = lambda p: (root / p).read_text(encoding="utf-8")

    lint = Lint()
    design = read("DESIGN.md")
    sec6a = design_section(design, "6a.")
    doc6a = backticked(sec6a)

    # 1. vmstat taxonomy.
    vm_enum = parse_enum(read("src/stats/vmstat.hh"), "VmItem")
    vm_table = parse_name_table(read("src/stats/vmstat.cc"), "VmItem")
    lint.check_bijection("vmstat", vm_enum, vm_table)
    lint.check_documented("vmstat", vm_table.values(), "6a", doc6a)

    # 2. tracepoint registry.
    tp_enum = parse_enum(read("src/stats/tracepoint.hh"),
                         "TraceEventType")
    tp_table = parse_name_table(read("src/stats/tracepoint.cc"),
                                "TraceEventType")
    lint.check_bijection("tracepoint", tp_enum, tp_table)
    lint.check_documented("tracepoint", tp_table.values(), "6a", doc6a)

    # 3. DEBUG_VM violation codes.
    vc_enum = parse_enum(read("src/debug/vm_checker.hh"), "ViolationCode")
    vc_table = parse_name_table(read("src/debug/vm_checker.cc"),
                                "ViolationCode")
    lint.check_bijection("violation", vc_enum, vc_table)
    sec6c = design_section(design, "6c.")
    lint.check_documented("violation", vc_table.values(), "6c",
                          backticked(sec6c))

    # Every invariant class must have an injection test that names its
    # ViolationCode enumerator.
    test_src = read("tests/debug_vm_test.cc")
    for code in vc_enum:
        if not re.search(r"ViolationCode::" + code + r"\b", test_src):
            lint.error(f"violation: {code} has no injection test in "
                       f"tests/debug_vm_test.cc")

    # The 6a doc tables must not advertise counters that do not exist
    # (stale docs after a rename). Restrict to the taxonomy prefixes so
    # prose backticks (config fields etc.) stay allowed.
    known = set(vm_table.values()) | set(tp_table.values())
    taxonomy_prefixes = ("pgscan_", "pgpromote_", "pgdemote", "pgmigrate_",
                         "pgshard_", "shard_", "memcg_", "pgtenant_",
                         "pgsteal", "pgactivate", "pgdeactivate",
                         "pgrotated", "pgfault_", "pghint_", "pswp",
                         "pgwriteback", "pgexchange", "kswapd_wake",
                         "kpromoted_wake", "watermark_", "migration_",
                         "promote_throttle", "list_rotation")
    for name in sorted(doc6a):
        if name.startswith(taxonomy_prefixes) and name not in known:
            lint.error(f"DESIGN.md 6a: {name!r} is not a known vmstat "
                       f"item or tracepoint")

    if lint.errors:
        for e in lint.errors:
            print(f"lint_counters: {e}", file=sys.stderr)
        print(f"lint_counters: {len(lint.errors)} error(s)",
              file=sys.stderr)
        return 1
    print(f"lint_counters: OK ({len(vm_enum)} vmstat items, "
          f"{len(tp_enum)} tracepoints, {len(vc_enum)} violation codes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
