#!/usr/bin/env python3
"""mclock-lint: the repo's determinism & API-contract rule engine.

The simulator's core promise is bit-identical output for any execution
width (--jobs, --shards workers). A handful of C++ idioms silently
break that promise (hash-order iteration, wall-clock reads) or weaken
an API contract (dropped gate results, taxonomy drift). Each is
mechanical to detect with text analysis, so this tool does — one rule
per failure class, over the file list the build actually compiles
(compile_commands.json), with a written-reason allowlist for the
audited exceptions:

  R1-unordered-iter  Iterating an unordered container in a
      deterministic path (src/sim, src/core, src/pfra, src/policies,
      src/vm, src/trace, src/debug) observes hash order, which libc++
      and libstdc++ do not agree on — goldens diverge by platform.
      Declaring one is fine (point lookups are order-free); iterating
      one must carry `// mclock-lint: unordered-iter-ok(<reason>)` on
      the iteration, or on the container's declaration when the
      container is never iterated at all.

  R2-wall-clock  Wall-clock/entropy calls (std::chrono *_clock::now,
      rand, srand, std::random_device, time()) anywhere outside
      src/harness/benchmark.cc — the one file whose whole job is
      host timing. Simulated time must come from the simulated clock
      and randomness from the seeded Rng. Observation-only uses
      (wall_seconds metrics, manifest timestamps) carry
      `// mclock-lint: wall-clock-ok(<reason>)`.

  R3-nodiscard  Result-carrying gate APIs must be [[nodiscard]]: the
      MigrateResult struct itself, and the memcg charge-gate
      predicates (withinMax, lowProtected, consumePromoteCredit,
      hasPromoteCredit) on their declarations. A dropped result is a
      skipped rollback or an unenforced quota.

  R4-taxonomy  The observability taxonomy cross-check (formerly
      tools/lint_counters.py): VmItem / TraceEventType /
      ViolationCode enums, their name tables, the DESIGN.md 6a/6c
      tables, and the violation-injection test suite must agree
      exactly.

Every allowlist annotation must carry a non-empty reason inside the
parentheses; a bare annotation is itself an error.

Usage:
  mclock_lint.py [--root DIR] [--rules R1,R2,... | all]
                 [--compile-commands PATH] [--files FILE...]

With --files, the text rules (R1-R3) run on exactly those files
(fixture mode); otherwise the file list is derived from the
compilation database (TUs under src/ plus their sibling headers). R4
always analyzes the tree at --root. Exit 0 clean, 1 on findings.
"""

import argparse
import json
import pathlib
import re
import sys


ANNOTATION_RE = re.compile(r"//\s*mclock-lint:\s*([a-z-]+)(?:\(([^)]*)\))?")

# How many lines above a site an annotation may sit (blank/comment
# lines included) and still attach to it.
ANNOTATION_REACH = 2


class Finding:
    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        where = f"{self.path}:{self.line}" if self.line else f"{self.path}"
        return f"mclock_lint: [{self.rule}] {where}: {self.message}"


class SourceFile:
    """One file plus its parsed `// mclock-lint:` annotations."""

    def __init__(self, path, display):
        self.path = path
        self.display = display  # root-relative, for messages
        self.lines = path.read_text(encoding="utf-8").splitlines()
        # line number (1-based) -> (kind, reason or None)
        self.annotations = {}
        for i, line in enumerate(self.lines, 1):
            m = ANNOTATION_RE.search(line)
            if m:
                self.annotations[i] = (m.group(1), m.group(2))

    def annotation_for(self, kind, lineno):
        """Annotation of `kind` on `lineno` or within reach above it."""
        for cand in range(lineno, lineno - ANNOTATION_REACH - 1, -1):
            ann = self.annotations.get(cand)
            if ann and ann[0] == kind:
                return cand, ann[1]
        return None


def strip_comments_keep_lines(lines):
    """Comment-free copy of `lines`, same line numbering."""
    text = "\n".join(lines)
    # Block comments become equivalent newlines; line comments vanish.
    def blank(m):
        return "\n" * m.group(0).count("\n")

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text.splitlines()


# --- R1: unordered-container iteration ---------------------------------

R1_DIRS = ("src/sim", "src/core", "src/pfra", "src/policies", "src/vm",
           "src/trace", "src/debug")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*([^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")


def rule_r1(src, findings):
    if not src.display.startswith(R1_DIRS):
        return
    code = strip_comments_keep_lines(src.lines)

    # Declared unordered containers, and whether the declaration itself
    # carries an audit annotation (meaning: never iterated, point
    # lookups only — which exempts every use of that name).
    exempt_names = set()
    names = {}
    for i, line in enumerate(code, 1):
        for m in UNORDERED_DECL_RE.finditer(line):
            name = m.group(1)
            names[name] = i
            if check_annotation(src, "unordered-iter-ok", i, findings,
                                "R1-unordered-iter"):
                exempt_names.add(name)

    def flag(lineno, what):
        if check_annotation(src, "unordered-iter-ok", lineno, findings,
                            "R1-unordered-iter"):
            return
        findings.append(Finding(
            "R1-unordered-iter", src.display, lineno,
            f"iteration over unordered container {what} observes hash "
            f"order in a deterministic path; make the order explicit "
            f"or annotate `// mclock-lint: unordered-iter-ok(<reason>)`"))

    for i, line in enumerate(code, 1):
        m = RANGE_FOR_RE.search(line)
        if m:
            expr = m.group(1).strip()
            ids = set(re.findall(r"\w+", expr))
            hits = ids & set(names)
            if "unordered_" in expr or (hits and not hits & exempt_names):
                flag(i, f"`{expr}`")
                continue
        m = BEGIN_CALL_RE.search(line)
        if m and m.group(1) in names and m.group(1) not in exempt_names:
            flag(i, f"`{m.group(1)}`")


# --- R2: wall-clock / entropy ------------------------------------------

R2_EXEMPT_FILES = ("src/harness/benchmark.cc",)
R2_PATTERNS = (
    (re.compile(r"std::chrono::\w*_clock::now"), "wall-clock read"),
    (re.compile(r"(?<![\w_.])s?rand\s*\("), "libc PRNG"),
    (re.compile(r"std::random_device"), "hardware entropy"),
    (re.compile(r"(?<![\w_.])time\s*\("), "wall-clock read"),
)


def rule_r2(src, findings):
    if not src.display.startswith("src/"):
        return
    if src.display in R2_EXEMPT_FILES:
        return
    code = strip_comments_keep_lines(src.lines)
    for i, line in enumerate(code, 1):
        for pat, what in R2_PATTERNS:
            if not pat.search(line):
                continue
            if check_annotation(src, "wall-clock-ok", i, findings,
                                "R2-wall-clock"):
                continue
            findings.append(Finding(
                "R2-wall-clock", src.display, i,
                f"{what} in simulation code: results must depend only "
                f"on the simulated clock and the seeded Rng; move it to "
                f"src/harness/benchmark.cc or annotate "
                f"`// mclock-lint: wall-clock-ok(<reason>)`"))


# --- R3: [[nodiscard]] on gate APIs ------------------------------------

R3_NODISCARD_STRUCTS = ("MigrateResult",)
R3_GATE_FUNCS = ("withinMax", "lowProtected", "consumePromoteCredit",
                 "hasPromoteCredit")
R3_STRUCT_RE = re.compile(
    r"^\s*struct\s+(" + "|".join(R3_NODISCARD_STRUCTS) + r")\b")
R3_FUNC_RE = re.compile(
    r"(\[\[nodiscard\]\]\s*)?\bbool\s+("
    + "|".join(R3_GATE_FUNCS) + r")\s*\(")
R3_BARE_NAME_RE = re.compile(
    r"^\s*(" + "|".join(R3_GATE_FUNCS) + r")\s*\(")


def rule_r3(src, findings):
    if not src.display.endswith((".hh", ".h")):
        return  # declarations only; qualified definitions inherit
    code = strip_comments_keep_lines(src.lines)
    for i, line in enumerate(code, 1):
        prev = code[i - 2] if i >= 2 else ""
        m = R3_STRUCT_RE.match(line)
        if m and "[[nodiscard]]" not in line and \
                "[[nodiscard]]" not in prev:
            findings.append(Finding(
                "R3-nodiscard", src.display, i,
                f"struct {m.group(1)} must be declared "
                f"`struct [[nodiscard]] {m.group(1)}`: a dropped "
                f"result skips rollback/retry handling"))
        m = R3_FUNC_RE.search(line)
        name = None
        if m and "::" not in line.split("(")[0]:
            if not m.group(1) and "[[nodiscard]]" not in prev:
                name, where = m.group(2), i
        else:
            # gem5 style: return type on the previous line.
            m = R3_BARE_NAME_RE.match(line)
            if m and re.search(r"\bbool\b", prev) and \
                    "[[nodiscard]]" not in prev and \
                    "[[nodiscard]]" not in (code[i - 3] if i >= 3 else ""):
                name, where = m.group(1), i
        if name:
            findings.append(Finding(
                "R3-nodiscard", src.display, where,
                f"charge-gate API {name}() must be [[nodiscard]]: the "
                f"result is the admission decision"))


# --- shared annotation handling ----------------------------------------


def check_annotation(src, kind, lineno, findings, rule):
    """True if `kind` covers `lineno`; flags reason-less annotations."""
    hit = src.annotation_for(kind, lineno)
    if not hit:
        return False
    ann_line, reason = hit
    if not (reason or "").strip():
        findings.append(Finding(
            rule, src.display, ann_line,
            f"allowlist annotation `{kind}` needs a written reason: "
            f"`// mclock-lint: {kind}(<why this is safe>)`"))
    return True


# --- R4: observability taxonomy (ported from lint_counters.py) ---------


def parse_enum(text, enum_name, path):
    m = re.search(
        r"enum\s+class\s+" + enum_name + r"\s*(?::[^({]*)?\{(.*?)\}",
        text, re.S)
    if not m:
        raise SystemExit(f"mclock_lint: enum {enum_name} not found "
                         f"in {path}")
    body = re.sub(r"//[^\n]*|/\*.*?\*/", "", m.group(1), flags=re.S)
    names = []
    for entry in body.split(","):
        entry = entry.split("=")[0].strip()
        if entry and entry not in ("NumItems", "NumCodes"):
            names.append(entry)
    return names


def parse_name_table(text, enum_name):
    return dict(re.findall(
        r"case\s+" + enum_name + r"::(\w+)\s*:\s*return\s+\"([^\"]+)\"",
        text))


def backticked(text):
    return set(re.findall(r"`([a-z0-9_]+)`", text))


def design_section(design, heading):
    m = re.search(
        r"^## " + re.escape(heading) + r"[^\n]*\n(.*?)(?=^## |\Z)",
        design, re.S | re.M)
    if not m:
        raise SystemExit(f"mclock_lint: DESIGN.md section {heading!r} "
                         f"not found")
    return m.group(1)


def rule_r4(root, findings):
    def err(path, msg):
        findings.append(Finding("R4-taxonomy", path, 0, msg))

    def read(p):
        return (root / p).read_text(encoding="utf-8")

    def check_bijection(what, path, enumerators, table):
        for e in enumerators:
            if e not in table:
                err(path, f"{what}: enumerator {e} has no name-table "
                          f"case")
        for e in table:
            if e not in enumerators:
                err(path, f"{what}: name-table case {e} is not an "
                          f"enumerator")
        names = list(table.values())
        for n in names:
            if names.count(n) > 1:
                err(path, f"{what}: duplicate name {n!r}")

    def check_documented(what, names, doc_section, doc_names):
        for n in sorted(set(names)):
            if n not in doc_names:
                err("DESIGN.md", f"{what}: {n!r} missing from "
                                 f"section {doc_section}")

    design = read("DESIGN.md")
    doc6a = backticked(design_section(design, "6a."))

    vm_enum = parse_enum(read("src/stats/vmstat.hh"), "VmItem",
                         "src/stats/vmstat.hh")
    vm_table = parse_name_table(read("src/stats/vmstat.cc"), "VmItem")
    check_bijection("vmstat", "src/stats/vmstat.cc", vm_enum, vm_table)
    check_documented("vmstat", vm_table.values(), "6a", doc6a)

    tp_enum = parse_enum(read("src/stats/tracepoint.hh"),
                         "TraceEventType", "src/stats/tracepoint.hh")
    tp_table = parse_name_table(read("src/stats/tracepoint.cc"),
                                "TraceEventType")
    check_bijection("tracepoint", "src/stats/tracepoint.cc", tp_enum,
                    tp_table)
    check_documented("tracepoint", tp_table.values(), "6a", doc6a)

    vc_enum = parse_enum(read("src/debug/vm_checker.hh"),
                         "ViolationCode", "src/debug/vm_checker.hh")
    vc_table = parse_name_table(read("src/debug/vm_checker.cc"),
                                "ViolationCode")
    check_bijection("violation", "src/debug/vm_checker.cc", vc_enum,
                    vc_table)
    check_documented("violation", vc_table.values(), "6c",
                     backticked(design_section(design, "6c.")))

    test_src = read("tests/debug_vm_test.cc")
    for code in vc_enum:
        if not re.search(r"ViolationCode::" + code + r"\b", test_src):
            err("tests/debug_vm_test.cc",
                f"violation: {code} has no injection test")

    # Stale-doc check: 6a must not advertise unknown taxonomy names.
    known = set(vm_table.values()) | set(tp_table.values())
    taxonomy_prefixes = ("pgscan_", "pgpromote_", "pgdemote",
                         "pgmigrate_", "pgshard_", "shard_", "memcg_",
                         "pgtenant_", "pgsteal", "pgactivate",
                         "pgdeactivate", "pgrotated", "pgfault_",
                         "pghint_", "pswp", "pgwriteback", "pgexchange",
                         "kswapd_wake", "kpromoted_wake", "watermark_",
                         "migration_", "promote_throttle",
                         "list_rotation")
    for name in sorted(doc6a):
        if name.startswith(taxonomy_prefixes) and name not in known:
            err("DESIGN.md", f"6a: {name!r} is not a known vmstat item "
                             f"or tracepoint")


# --- file-list derivation ----------------------------------------------


def files_from_compile_commands(root, db_path):
    """TUs under src/ from the compilation database, plus all headers
    under src/ (headers never appear in the database)."""
    files = set()
    if db_path.exists():
        for entry in json.loads(db_path.read_text(encoding="utf-8")):
            f = pathlib.Path(entry["file"])
            if not f.is_absolute():
                f = pathlib.Path(entry["directory"]) / f
            try:
                rel = f.resolve().relative_to(root.resolve())
            except ValueError:
                continue
            if rel.parts[:1] == ("src",):
                files.add(rel)
    else:
        print(f"mclock_lint: note: {db_path} not found; falling back "
              f"to a source-tree glob", file=sys.stderr)
        files.update(p.relative_to(root)
                     for p in (root / "src").rglob("*.cc"))
    files.update(p.relative_to(root) for p in (root / "src").rglob("*.hh"))
    return sorted(files)


TEXT_RULES = {
    "R1": ("R1-unordered-iter", rule_r1),
    "R2": ("R2-wall-clock", rule_r2),
    "R3": ("R3-nodiscard", rule_r3),
}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", type=pathlib.Path,
                    help="repository root (default: cwd)")
    ap.add_argument("--rules", default="all",
                    help="comma list of R1,R2,R3,R4 (default: all)")
    ap.add_argument("--compile-commands", type=pathlib.Path, default=None,
                    help="compilation database "
                         "(default: <root>/build/compile_commands.json)")
    ap.add_argument("--files", nargs="*", default=None,
                    help="explicit files for the text rules "
                         "(fixture mode; paths relative to --root)")
    # Positional root kept for lint_counters.py back-compat.
    ap.add_argument("root_pos", nargs="?", default=None,
                    help=argparse.SUPPRESS)
    args = ap.parse_args()
    root = pathlib.Path(args.root_pos) if args.root_pos else args.root

    if args.rules == "all":
        selected = {"R1", "R2", "R3", "R4"}
    else:
        selected = set()
        for token in args.rules.split(","):
            token = token.strip().split("-")[0].upper()
            if token not in ("R1", "R2", "R3", "R4"):
                ap.error(f"unknown rule {token!r}")
            selected.add(token)

    findings = []
    text_rules = [TEXT_RULES[r] for r in sorted(selected & set(TEXT_RULES))]
    if text_rules:
        if args.files is not None:
            rels = [pathlib.Path(f) for f in args.files]
        else:
            db = args.compile_commands or \
                root / "build" / "compile_commands.json"
            rels = files_from_compile_commands(root, db)
        for rel in rels:
            src = SourceFile(root / rel, rel.as_posix())
            for _, rule in text_rules:
                rule(src, findings)

    if "R4" in selected:
        rule_r4(root, findings)

    for f in findings:
        print(f, file=sys.stderr)
    if findings:
        print(f"mclock_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"mclock_lint: OK ({','.join(sorted(selected))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
