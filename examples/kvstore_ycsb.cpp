/**
 * @file
 * Key-value store example: a Memcached-like store under the YCSB
 * workload mix, comparing every tiered policy (the paper's headline
 * Fig. 5 experiment at example scale).
 *
 * Usage: kvstore_ycsb [records] [ops]
 */

#include <cstdio>
#include <cstdlib>

#include "base/units.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/ycsb.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    workloads::YcsbConfig ycsb;
    ycsb.recordCount =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 9000;
    ycsb.opsPerWorkload =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 300000;

    // Daemon cadence scaled to the short simulated run, exactly like
    // the benches (see bench/bench_common.hh).
    policies::PolicyOptions opts;
    opts.scanInterval = 4_ms;

    std::printf("YCSB over Memcached-like KV store: %zu records, "
                "%llu ops per workload\n",
                ycsb.recordCount,
                static_cast<unsigned long long>(ycsb.opsPerWorkload));
    std::printf("%-12s", "policy");
    for (const char *w : {"A", "B", "C", "F", "W", "D"})
        std::printf(" %10s", w);
    std::printf("   (kops/s per workload)\n");

    for (const auto &policy : policies::tieredPolicyNames()) {
        sim::MachineConfig machine;
        machine.nodes = {{TierKind::Dram, 4_MiB},
                         {TierKind::Pmem, 32_MiB}};  // headroom for D's inserts
        machine.cache.sizeBytes = 256_KiB;
        sim::Simulator sim(machine);
        sim.setPolicy(policies::makePolicy(policy, opts));

        workloads::YcsbDriver driver(sim, ycsb);
        driver.load();
        const auto results = driver.runPaperSequence();
        std::printf("%-12s", policy.c_str());
        for (const auto &r : results)
            std::printf(" %10.1f", r.throughputOpsPerSec() / 1000.0);
        std::printf("\n");
    }
    std::printf("\nWorkload E is omitted: Memcached implements no SCAN "
                "operation (paper §V-B).\n");
    return 0;
}
