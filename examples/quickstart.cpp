/**
 * @file
 * Quickstart: build a hybrid DRAM+PM machine, run MULTI-CLOCK, and
 * watch a hot page migrate from the PM tier to the DRAM tier.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "base/units.hh"
#include "core/multiclock.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"

using namespace mclock;

int
main()
{
    // 1. Describe the machine: one DRAM node + one PM node, with the
    //    default Optane-like timing model.
    sim::MachineConfig machine = sim::tinyTestMachine();
    machine.cache.enabled = false;  // keep the demo readable

    // 2. Instantiate the simulator and install the MULTI-CLOCK policy.
    sim::Simulator sim(machine);
    sim.setPolicy(std::make_unique<core::MultiClockPolicy>());

    std::printf("machine: %zu DRAM frames + %zu PM frames\n",
                sim.memory().node(0).totalFrames(),
                sim.memory().node(1).totalFrames());

    // 3. Allocate more memory than DRAM holds; later pages spill to PM.
    const std::size_t dramFrames = sim.memory().node(0).totalFrames();
    const std::size_t pages = dramFrames + 64;
    const Vaddr heap = sim.mmap(pages * kPageSize, true, "heap");
    for (std::size_t i = 0; i < pages; ++i)
        sim.write(heap + i * kPageSize);

    // 4. Find a page that was born in the PM tier.
    Page *victim = nullptr;
    sim.space().forEachPage([&](Page *pg) {
        if (!victim && sim.pageTier(pg) == TierKind::Pmem)
            victim = pg;
    });
    std::printf("picked page vpn=%llu, born in %s\n",
                static_cast<unsigned long long>(victim->vpn()),
                sim.memConfig().tierName(sim.pageTier(victim)));

    // 5. Hammer that page. kpromoted wakes every second; after a few
    //    scans the page walks inactive -> active -> promote -> DRAM.
    int second = 0;
    while (sim.pageTier(victim) == TierKind::Pmem && second < 10) {
        for (int i = 0; i < 8; ++i) {
            sim.read(victim->vaddr());
            sim.compute(125_ms);
        }
        ++second;
        std::printf("t=%ds: page is in %s (list=%s)\n", second,
                    sim.memConfig().tierName(sim.pageTier(victim)),
                    lruListName(victim->list()));
    }

    std::printf("\nMULTI-CLOCK promoted the hot page after ~%d scans\n",
                second);
    std::printf("promotions=%llu demotions=%llu\n",
                static_cast<unsigned long long>(
                    sim.metrics().totalPromotions()),
                static_cast<unsigned long long>(
                    sim.metrics().totalDemotions()));
    return sim.pageTier(victim) == TierKind::Dram ? 0 : 1;
}
