/**
 * @file
 * Graph analytics example: run GAPBS PageRank on a Kronecker graph
 * whose footprint exceeds DRAM, comparing static tiering against
 * MULTI-CLOCK (the scenario motivating the paper's Fig. 6).
 *
 * Usage: graph_analytics [scale] [degree] [trials]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "base/units.hh"
#include "policies/factory.hh"
#include "sim/machine.hh"
#include "sim/simulator.hh"
#include "workloads/gapbs/driver.hh"

using namespace mclock;

int
main(int argc, char **argv)
{
    workloads::gapbs::GapbsConfig cfg;
    cfg.scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 13;
    cfg.degree = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;
    cfg.trials = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 2;
    cfg.prIters = 5;

    std::printf("PageRank on kron scale=%u degree=%u (%u trials)\n",
                cfg.scale, cfg.degree, cfg.trials);
    std::printf("%-12s %14s %14s %10s\n", "policy", "avg trial (s)",
                "promotions", "checksum");

    double staticSeconds = 0.0;
    for (const std::string policy : {"static", "multiclock", "nimble"}) {
        sim::MachineConfig machine;
        machine.nodes = {{TierKind::Dram, 8_MiB},
                         {TierKind::Pmem, 32_MiB}};
        machine.cache.sizeBytes = 256_KiB;
        sim::Simulator sim(machine);
        policies::PolicyOptions opts;
        opts.scanInterval = 4_ms;  // scaled cadence (see benches)
        sim.setPolicy(policies::makePolicy(policy, opts));

        workloads::gapbs::GapbsDriver driver(sim, cfg);
        const auto result =
            driver.run(workloads::gapbs::Kernel::PR);
        if (policy == "static")
            staticSeconds = result.avgTrialSeconds();
        std::printf("%-12s %14.3f %14llu %10llu  (%.2fx static)\n",
                    policy.c_str(), result.avgTrialSeconds(),
                    static_cast<unsigned long long>(
                        sim.metrics().totalPromotions()),
                    static_cast<unsigned long long>(result.checksum),
                    staticSeconds / result.avgTrialSeconds());
    }
    return 0;
}
