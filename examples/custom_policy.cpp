/**
 * @file
 * Extending the library: implement your own tiering policy against the
 * public TieringPolicy interface and compare it with MULTI-CLOCK.
 *
 * The toy policy below ("second-chance promoter") promotes any PM page
 * whose PTE accessed bit is set on two consecutive daemon scans — a
 * middle ground between Nimble (1 reference) and MULTI-CLOCK (3 list
 * transitions).
 */

#include <cstdio>
#include <memory>
#include <string>

#include "base/units.hh"
#include "pfra/lru_lists.hh"
#include "policies/factory.hh"
#include "policies/policy.hh"
#include "sim/simulator.hh"
#include "vm/page.hh"
#include "workloads/ycsb.hh"

using namespace mclock;

/** Promote after seeing the accessed bit in two consecutive scans. */
class SecondChancePromoter : public policies::TieringPolicy
{
  public:
    const char *name() const override { return "second-chance"; }

    void
    attach(sim::Simulator &sim) override
    {
        TieringPolicy::attach(sim);
        sim.daemons().add("second_chance", 4_ms,
                          [this](SimTime now) { tick(now); });
    }

    policies::FeatureRow
    features() const override
    {
        policies::FeatureRow row;
        row.tiering = "SecondChance (example)";
        row.tracking = "Reference Bit";
        row.promotion = "2-scan recency";
        row.demotion = "Recency";
        return row;
    }

  private:
    void
    tick(SimTime)
    {
        auto &mem = sim_->memory();
        sim_->metrics().beginPromotionRound();
        for (NodeId id : mem.tier(TierKind::Pmem)) {
            auto &node = mem.node(id);
            for (bool anon : {true, false}) {
                scanList(node, pfra::NodeLists::inactiveKind(anon), 512);
                scanList(node, pfra::NodeLists::activeKind(anon), 512);
            }
        }
    }

    void
    scanList(sim::Node &node, LruListKind kind, std::size_t budget)
    {
        auto &lists = node.lists();
        auto &list = lists.list(kind);
        const std::size_t n = std::min(budget, list.size());
        for (std::size_t i = 0; i < n; ++i) {
            Page *pg = list.back();
            if (pg->testAndClearPteReferenced()) {
                if (pg->referenced()) {
                    // Second consecutive referenced scan: promote.
                    pg->setReferenced(false);
                    lists.remove(pg);
                    if (sim_->promotePage(
                            pg,
                            sim::Simulator::ChargeMode::Background)) {
                        pg->setActive(true);
                        sim_->memory()
                            .node(pg->node())
                            .lists()
                            .add(pg, pfra::NodeLists::activeKind(
                                         pg->isAnon()));
                        continue;
                    }
                    lists.add(pg, kind);
                } else {
                    pg->setReferenced(true);
                    lists.rotateToFront(pg);
                }
            } else {
                pg->setReferenced(false);
                lists.rotateToFront(pg);
            }
        }
        sim_->chargeScan(n);
    }
};

int
main()
{
    workloads::YcsbConfig ycsb;
    ycsb.recordCount = 9000;
    ycsb.opsPerWorkload = 300000;

    std::printf("%-14s %12s %12s %12s\n", "policy", "kops/s",
                "promotions", "re-accessed");
    for (const std::string policy :
         {"static", "second-chance", "multiclock"}) {
        sim::MachineConfig machine;
        machine.nodes = {{TierKind::Dram, 4_MiB},
                         {TierKind::Pmem, 16_MiB}};
        machine.cache.sizeBytes = 256_KiB;
        sim::Simulator sim(machine);
        policies::PolicyOptions opts;
        opts.scanInterval = 4_ms;  // scaled cadence (see benches)
        if (policy == "second-chance")
            sim.setPolicy(std::make_unique<SecondChancePromoter>());
        else
            sim.setPolicy(policies::makePolicy(policy, opts));

        workloads::YcsbDriver driver(sim, ycsb);
        driver.load();
        const auto result = driver.run(workloads::YcsbWorkload::A);
        std::printf("%-14s %12.1f %12llu %12llu\n", policy.c_str(),
                    result.throughputOpsPerSec() / 1000.0,
                    static_cast<unsigned long long>(
                        sim.metrics().totalPromotions()),
                    static_cast<unsigned long long>(
                        sim.metrics().totalReaccessed()));
    }
    return 0;
}
